package analyzers_test

import (
	"testing"

	"pscluster/internal/analyzers"
	"pscluster/internal/analyzers/analyzertest"
)

// Each analyzer is exercised over two kinds of testdata packages:
// engine-named ones ("core") where the invariant binds, and neutral
// ones ("util") proving the scope rules. The trees contain flagged,
// clean, and annotation-suppressed sites; see analyzertest for the
// `// want` convention.

func TestDeterminismEngine(t *testing.T) {
	analyzertest.Run(t, analyzers.Determinism, "testdata/determinism/core")
}

func TestDeterminismDomain(t *testing.T) {
	analyzertest.Run(t, analyzers.Determinism, "testdata/determinism/domain")
}

func TestDeterminismNonEngine(t *testing.T) {
	analyzertest.Run(t, analyzers.Determinism, "testdata/determinism/util")
}

func TestHotpathAlloc(t *testing.T) {
	analyzertest.Run(t, analyzers.HotpathAlloc, "testdata/hotpath/hot")
}

func TestClockDisciplineEngine(t *testing.T) {
	analyzertest.Run(t, analyzers.ClockDiscipline, "testdata/clock/core")
}

func TestClockDisciplineNonEngine(t *testing.T) {
	analyzertest.Run(t, analyzers.ClockDiscipline, "testdata/clock/util")
}

func TestSpanPairing(t *testing.T) {
	analyzertest.Run(t, analyzers.SpanPairing, "testdata/spanpair/sp")
}

func TestBufOwnership(t *testing.T) {
	analyzertest.Run(t, analyzers.BufOwnership, "testdata/bufownership/own")
}

func TestResourceLifetime(t *testing.T) {
	analyzertest.Run(t, analyzers.ResourceLifetime, "testdata/resourcelifetime/rl")
}

// TestResourceLifetimeScope proves the lifetime analyzer ignores
// packages outside the fabric plane: the same hazard shapes in a
// neutral package produce nothing.
func TestResourceLifetimeScope(t *testing.T) {
	analyzertest.Run(t, analyzers.ResourceLifetime, "testdata/resourcelifetime/util")
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: incomplete definition", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 6 {
		t.Errorf("suite has %d analyzers, want 6", len(seen))
	}
}
