package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// pslint directives are line comments of the form
//
//	//pslint:<name> <reason>
//
// Suppression directives (nondeterministic-ok, clock-ok, span-ok) apply
// to findings on the directive's own line or on the line directly
// below it, so both trailing and preceding placement work:
//
//	for k := range m { // pslint:nondeterministic-ok keys drained into a sorted slice
//
//	//pslint:clock-ok cost charged by the applyAction caller
//	func applyToSet(...)
//
// A suppression without a reason does not suppress — the analyzer
// reports the missing reason instead, so every silenced finding
// documents why the invariant may be broken there.

const directivePrefix = "pslint:"

// directive is one parsed //pslint: comment.
type directive struct {
	name   string // "hotpath", "nondeterministic-ok", ...
	reason string // text after the name, "" when absent
	line   int    // line the comment sits on
	pos    token.Pos
}

// directiveIndex holds one file's directives keyed by line.
type directiveIndex struct {
	byLine map[int][]directive
}

// parseDirectives scans every comment of the file for pslint
// directives. Both "//pslint:x" and "// pslint:x" spellings parse, the
// former matching the Go toolchain's directive convention.
func parseDirectives(fset *token.FileSet, file *ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: map[int][]directive{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			line := fset.Position(c.Pos()).Line
			idx.byLine[line] = append(idx.byLine[line], directive{
				name:   name,
				reason: strings.TrimSpace(reason),
				line:   line,
				pos:    c.Pos(),
			})
		}
	}
	return idx
}

// fileFor returns the syntax file containing pos, or nil.
func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// directivesFor returns (lazily building) the directive index of the
// file containing pos.
func (p *Pass) directivesFor(pos token.Pos) *directiveIndex {
	f := p.fileFor(pos)
	if f == nil {
		return &directiveIndex{byLine: map[int][]directive{}}
	}
	if p.directives == nil {
		p.directives = map[*ast.File]*directiveIndex{}
	}
	idx, ok := p.directives[f]
	if !ok {
		idx = parseDirectives(p.Fset, f)
		p.directives[f] = idx
	}
	return idx
}

// suppression looks for a named suppression directive covering pos: on
// the same line, or on the line directly above. It returns the
// directive and whether one was found.
func (p *Pass) suppression(pos token.Pos, name string) (directive, bool) {
	idx := p.directivesFor(pos)
	line := p.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range idx.byLine[l] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// suppressed reports whether a finding at pos is silenced by the named
// directive. A directive without a reason does not silence: the
// analyzer reports the bare annotation instead, keeping "why is this
// allowed" in the source next to every suppression.
func (p *Pass) suppressed(pos token.Pos, name string) bool {
	d, ok := p.suppression(pos, name)
	if !ok {
		return false
	}
	if d.reason == "" {
		p.Reportf(pos, "//pslint:%s needs a reason: state why this site may break the invariant", name)
		// Still suppress the underlying finding: the annotation marks it
		// as reviewed, the missing reason is the actionable diagnostic.
		return true
	}
	return true
}

// funcDoc returns the doc comment of the innermost function declaration
// enclosing pos, plus the declaration itself.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// hasDirective reports whether the function's doc comment carries the
// named directive (e.g. //pslint:hotpath).
func hasDirective(fd *ast.FuncDecl, name string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, directivePrefix)
		if !ok {
			continue
		}
		dname, _, _ := strings.Cut(rest, " ")
		if dname == name {
			return true
		}
	}
	return false
}
