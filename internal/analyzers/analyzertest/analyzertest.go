// Package analyzertest is the pslint counterpart of
// golang.org/x/tools/go/analysis/analysistest, built on the standard
// library alone: it loads a testdata package from source, type-checks
// it with the stdlib "source" importer (so testdata may import fmt,
// time, math/rand, ...), runs one analyzer, and diffs the reported
// diagnostics against `// want` expectations in the testdata.
//
// Expectations use the analysistest convention: a line that should
// produce a diagnostic carries a trailing comment
//
//	x := time.Now() // want `wall clock`
//
// whose back-quoted (or double-quoted) argument is a regexp that must
// match a diagnostic reported on that line. Multiple `// want` clauses
// on one line expect multiple diagnostics. Diagnostics on lines with no
// expectation, and expectations with no diagnostic, both fail the test.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"pscluster/internal/analyzers"
)

// wantRe matches one expectation clause: want `regexp` or want "regexp".
var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

// Run loads the package in dir (its base name becomes the import path,
// so a directory named "core" type-checks as engine package "core"),
// runs the analyzer over it and reports any mismatch against the
// `// want` expectations as test errors.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, src := parseDir(t, fset, dir)

	pkgPath := filepath.Base(dir)
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("typecheck: %v", err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var got []analyzers.Diagnostic
	pass := &analyzers.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analyzers.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkDiagnostics(t, fset, src, got)
}

// parseDir parses every non-test .go file of dir, returning the syntax
// trees and the raw sources keyed by filename.
func parseDir(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read testdata dir: %v", err)
	}
	var files []*ast.File
	src := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		src[path] = data
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	return files, src
}

// expectation is one `// want` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// checkDiagnostics diffs reported diagnostics against expectations.
func checkDiagnostics(t *testing.T, fset *token.FileSet, src map[string][]byte, got []analyzers.Diagnostic) {
	t.Helper()
	wants := collectWants(t, src)

	type key struct {
		file string
		line int
	}
	unmatched := map[key][]string{}
	for _, d := range got {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		unmatched[k] = append(unmatched[k], d.Message)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		msgs := unmatched[k]
		idx := -1
		for i, m := range msgs {
			if w.re.MatchString(m) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got %v", w.file, w.line, w.re, msgs)
			continue
		}
		unmatched[k] = append(msgs[:idx], msgs[idx+1:]...)
	}
	var leftovers []string
	for k, msgs := range unmatched {
		for _, m := range msgs {
			leftovers = append(leftovers, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m))
		}
	}
	sort.Strings(leftovers)
	for _, l := range leftovers {
		t.Error(l)
	}
}

// collectWants scans the raw sources for `// want` clauses line by
// line, so expectations live exactly where analysistest puts them.
func collectWants(t *testing.T, src map[string][]byte) []expectation {
	t.Helper()
	var wants []expectation
	for path, data := range src {
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}
