// Package analyzertest is the pslint counterpart of
// golang.org/x/tools/go/analysis/analysistest, built on the standard
// library alone: it loads a testdata package from source, type-checks
// it with the stdlib "source" importer (so testdata may import fmt,
// time, math/rand, ...), runs one analyzer, and diffs the reported
// diagnostics against `// want` expectations in the testdata.
//
// Testdata packages may be multi-file, and may import *sibling*
// directories by bare name: a fixture at testdata/bufownership/own
// importing "bufpool" resolves to testdata/bufownership/bufpool, so
// flow fixtures can model the real pool/transport APIs without
// dragging in heavyweight stdlib packages. Sibling packages are
// type-checked but not analyzed.
//
// Expectations use the analysistest convention: a line that should
// produce a diagnostic carries a trailing comment
//
//	x := time.Now() // want `wall clock`
//
// whose back-quoted (or double-quoted) argument is a regexp that must
// match a diagnostic reported on that line. Multiple `// want` clauses
// on one line expect multiple diagnostics. Diagnostics on lines with no
// expectation, and expectations with no diagnostic, both fail the test.
//
// Findings silenced by a reasoned //pslint: directive are reported
// with Diagnostic.Suppressed set; assert them with
//
//	bufpool.Put(b) // want-suppressed `double-Release`
//
// Unasserted suppressed findings are not errors (suppression is the
// point), but a `// want-suppressed` clause with no matching finding
// fails, so testdata can prove a directive actually covers a hazard.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"pscluster/internal/analyzers"
)

// wantRe matches one expectation clause: want `regexp` or want "regexp".
var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

// wantSupRe matches a suppressed-finding expectation.
var wantSupRe = regexp.MustCompile("// want-suppressed (`[^`]*`|\"[^\"]*\")")

// Run loads the package in dir (its base name becomes the import path,
// so a directory named "core" type-checks as engine package "core"),
// runs the analyzer over it and reports any mismatch against the
// `// want` / `// want-suppressed` expectations as test errors.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, src, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}

	pkgPath := filepath.Base(dir)
	imp := &siblingImporter{
		fset: fset,
		root: filepath.Dir(dir),
		base: importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { t.Errorf("typecheck: %v", err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	var got []analyzers.Diagnostic
	pass := &analyzers.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analyzers.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkDiagnostics(t, fset, src, got)
}

// siblingImporter resolves imports against the testdata fixture's
// sibling directories first, then falls back to the stdlib source
// importer. Helper packages import through the same mechanism, so
// fixtures can layer (own → transport → bufpool).
type siblingImporter struct {
	fset *token.FileSet
	root string
	base types.Importer
	pkgs map[string]*types.Package
}

func (imp *siblingImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(imp.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() && !strings.Contains(path, "/") {
		files, _, err := parseDir(imp.fset, dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, imp.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("typecheck sibling package %s: %w", path, err)
		}
		imp.pkgs[path] = pkg
		return pkg, nil
	}
	return imp.base.Import(path)
}

// parseDir parses every non-test .go file of dir, returning the syntax
// trees and the raw sources keyed by filename.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("read testdata dir: %w", err)
	}
	var files []*ast.File
	src := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("read %s: %w", path, err)
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, f)
		src[path] = data
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, src, nil
}

// expectation is one `// want` or `// want-suppressed` clause.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
}

// checkDiagnostics diffs reported diagnostics against expectations.
// Active diagnostics must match `// want` clauses one-to-one;
// suppressed ones must cover every `// want-suppressed` clause but may
// otherwise go unasserted.
func checkDiagnostics(t *testing.T, fset *token.FileSet, src map[string][]byte, got []analyzers.Diagnostic) {
	t.Helper()
	wants := collectWants(t, src)

	type key struct {
		file string
		line int
	}
	unmatched := map[key][]string{}
	supAt := map[key][]string{}
	for _, d := range got {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		if d.Suppressed {
			supAt[k] = append(supAt[k], d.Message)
		} else {
			unmatched[k] = append(unmatched[k], d.Message)
		}
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		pool := unmatched[k]
		if w.suppressed {
			pool = supAt[k]
		}
		idx := -1
		for i, m := range pool {
			if w.re.MatchString(m) {
				idx = i
				break
			}
		}
		if idx < 0 {
			kind := "diagnostic"
			if w.suppressed {
				kind = "suppressed diagnostic"
			}
			t.Errorf("%s:%d: expected %s matching %q, got %v", w.file, w.line, kind, w.re, pool)
			continue
		}
		if w.suppressed {
			supAt[k] = append(pool[:idx], pool[idx+1:]...)
		} else {
			unmatched[k] = append(pool[:idx], pool[idx+1:]...)
		}
	}
	var leftovers []string
	for k, msgs := range unmatched {
		for _, m := range msgs {
			leftovers = append(leftovers, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m))
		}
	}
	sort.Strings(leftovers)
	for _, l := range leftovers {
		t.Error(l)
	}
}

// collectWants scans the raw sources for expectation clauses line by
// line, so expectations live exactly where analysistest puts them.
func collectWants(t *testing.T, src map[string][]byte) []expectation {
	t.Helper()
	var wants []expectation
	for path, data := range src {
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{file: path, line: i + 1, re: mustCompile(t, path, i+1, m[1])})
			}
			for _, m := range wantSupRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{file: path, line: i + 1, re: mustCompile(t, path, i+1, m[1]), suppressed: true})
			}
		}
	}
	return wants
}

func mustCompile(t *testing.T, path string, line int, quoted string) *regexp.Regexp {
	t.Helper()
	pat := quoted[1 : len(quoted)-1] // strip quotes/backquotes
	re, err := regexp.Compile(pat)
	if err != nil {
		t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, pat, err)
	}
	return re
}
