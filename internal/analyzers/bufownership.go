package analyzers

// bufownership is the flow-sensitive enforcement of the pooled-buffer
// contract (DESIGN §15): whoever acquires a wire buffer — bufpool.Get,
// particle.EncodeBatch, (*Batch).EncodeWire, or any function whose doc
// carries //pslint:pooled — owns exactly one disposal obligation, met
// by a bufpool.Put, a Message.Release, or an ownership transfer (a
// fabric Send*/channel send, a return, or any escape into a call or a
// data structure, after which the new holder is responsible). Tracked
// transport.Message values (Endpoint/Fabric Recv results and channel
// receives) carry the weaker obligation: never Release twice, never
// touch .Payload after Release — the leak check is deliberately not
// applied to them because many engine paths hand the payload onward.
//
// Reported hazard classes, all path-sensitive ("on some path" via the
// union join in dataflow.go):
//
//   - leak-to-GC: a return reachable with the buffer still owned
//   - double-Release (including a branchy maybe-Release before an
//     unconditional one, and a deferred Release after an explicit one)
//   - use-after-Release, and use after a send consumed ownership
//   - shared/broadcast escape: the same owned buffer sent twice —
//     the loop-broadcast shape the TCP fabric's sender-side
//     reclamation makes unsafe
//   - a pooled result discarded outright at statement level
//
// Suppress with //pslint:own-ok <reason> on the finding's line or the
// acquisition line. Known model gap: `defer bufpool.Put(buf)` pins the
// slice value at registration, while the tracker applies it to the
// variable at exit; re-acquiring into the same variable after such a
// defer is mismodeled (rare — the tree never does it).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
)

var BufOwnership = &Analyzer{
	Name: "bufownership",
	Doc: "flow-sensitive pooled-buffer ownership: every acquired wire buffer is Released " +
		"or sent exactly once on every path, and never touched afterwards",
	Run: runBufOwnership,
}

type bufKind uint8

const (
	kindBuf bufKind = 1 + iota // pooled []byte: full obligation
	kindMsg                    // transport.Message: no-double-Release only
)

// ownedVar is the tracker's per-variable bookkeeping.
type ownedVar struct {
	kind   bufKind
	origin token.Pos
	name   string
}

func runBufOwnership(pass *Pass) error {
	pooled := directiveFuncs(pass, "pooled")
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, fb := range funcBodies(f) {
			t := &bufTracker{
				pass:   pass,
				pooled: pooled,
				vars:   map[types.Object]ownedVar{},
				seen:   map[string]bool{},
			}
			runFlow(buildCFG(pass.TypesInfo, fb.body, fb.body.Rbrace), t)
		}
	}
	return nil
}

// directiveFuncs collects the package's own functions whose doc comment
// carries the named pslint directive (e.g. //pslint:pooled). Directives
// are invisible across package boundaries (export data drops comments),
// so well-known cross-package origins are hardcoded instead.
func directiveFuncs(pass *Pass, name string) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd, name) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = true
			}
		}
	}
	return out
}

type bufTracker struct {
	pass   *Pass
	pooled map[*types.Func]bool
	vars   map[types.Object]ownedVar
	seen   map[string]bool
}

// flag reports once per (pos, message); the final replay visits defers
// once per exit path, so dedup is load-bearing, not cosmetic.
func (t *bufTracker) flag(pos, origin token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	var alt []token.Pos
	if origin.IsValid() {
		alt = []token.Pos{origin}
	}
	t.pass.FlagAt(pos, alt, "own-ok", "%s", msg)
}

// identObj resolves an identifier to its object whether it defines
// (`:=`) or uses (`=`) the variable.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// rootIdent unwraps parens and slicings: buf, (buf), buf[:n] all name
// the same underlying pooled array.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			id, _ := e.(*ast.Ident)
			return id
		}
	}
}

// isMessageType reports whether typ is transport.Message (by name, so
// both the real module path and the bare testdata path qualify).
func isMessageType(typ types.Type) bool {
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	n, ok := typ.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Message" && path.Base(n.Obj().Pkg().Path()) == "transport"
}

// originOf classifies an acquisition call.
func (t *bufTracker) originOf(call *ast.CallExpr) (bufKind, bool) {
	fn := calleeFunc(t.pass.TypesInfo, call)
	if fn == nil {
		return 0, false
	}
	if t.pooled[fn] {
		return kindBuf, true
	}
	base := path.Base(funcPkgPath(fn))
	switch {
	case base == "bufpool" && fn.Name() == "Get":
		return kindBuf, true
	case base == "particle" && fn.Name() == "EncodeBatch":
		return kindBuf, true
	case fn.Name() == "EncodeWire" && recvTypeName(fn) == "Batch":
		return kindBuf, true
	case fn.Name() == "Recv":
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Results().Len() == 1 && isMessageType(sig.Results().At(0).Type()) {
			return kindMsg, true
		}
	}
	return 0, false
}

// isPoolPut matches bufpool.Put(x).
func (t *bufTracker) isPoolPut(call *ast.CallExpr) bool {
	fn := calleeFunc(t.pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Put" && path.Base(funcPkgPath(fn)) == "bufpool"
}

// isMsgRelease matches m.Release() for transport.Message receivers.
func (t *bufTracker) isMsgRelease(call *ast.CallExpr) bool {
	fn := calleeFunc(t.pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Release" && recvTypeName(fn) == "Message"
}

// sendPayloadArg returns the payload argument index of a fabric send
// method call, or -1. Matched loosely by name + arity: every fabric
// implementation (and the testdata fakes) spell these the same way.
func (t *bufTracker) sendPayloadArg(call *ast.CallExpr) int {
	fn := calleeFunc(t.pass.TypesInfo, call)
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return -1
	}
	switch fn.Name() {
	case "Send", "SendScaled", "SendSized":
		if len(call.Args) >= 3 {
			return 2
		}
	}
	return -1
}

// --- effects -----------------------------------------------------------

func (t *bufTracker) release(st flowState, obj types.Object, pos token.Pos, final bool) {
	v, ok := t.vars[obj]
	if !ok {
		return
	}
	if _, tracked := st[obj]; !tracked {
		return
	}
	if final {
		if st[obj]&stReleased != 0 {
			t.flag(pos, v.origin, "%s may already be Released on a path reaching this Release (double-Release)", v.name)
		} else if st[obj]&stSent != 0 {
			t.flag(pos, v.origin, "%s is Released after a send transferred its ownership", v.name)
		}
	}
	st[obj] = stReleased
}

func (t *bufTracker) transfer(st flowState, obj types.Object, pos token.Pos, final bool) {
	v, ok := t.vars[obj]
	if !ok {
		return
	}
	if _, tracked := st[obj]; !tracked {
		return
	}
	if final {
		if st[obj]&stSent != 0 {
			t.flag(pos, v.origin, "%s may be sent more than once — each send consumes ownership of the pooled buffer; encode per destination", v.name)
		} else if st[obj]&stReleased != 0 {
			t.flag(pos, v.origin, "%s is sent after being Released", v.name)
		}
	}
	st[obj] = stSent
}

// use checks a read of a tracked variable against its state.
func (t *bufTracker) use(st flowState, id *ast.Ident, final bool) {
	obj := t.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	v, ok := t.vars[obj]
	if !ok {
		return
	}
	s, tracked := st[obj]
	if !tracked || !final {
		return
	}
	if s&stReleased != 0 {
		t.flag(id.Pos(), v.origin, "%s may be used after Release", v.name)
	} else if v.kind == kindBuf && s&stSent != 0 {
		t.flag(id.Pos(), v.origin, "%s may be used after a send transferred its buffer", v.name)
	}
}

// escape stops tracking obj: ownership moved somewhere the
// intraprocedural analysis cannot see (alias, field store, callee,
// closure capture, return). Conservative by design — report only when
// certain.
func (t *bufTracker) escape(st flowState, obj types.Object) {
	delete(st, obj)
}

// --- node walking ------------------------------------------------------

func (t *bufTracker) node(st flowState, n ast.Node, final bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(st, n, final)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					t.valueSpec(st, vs, final)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if kind, isOrigin := t.originOf(call); isOrigin && kind == kindBuf && final {
				t.flag(call.Pos(), token.NoPos, "pooled buffer returned here is discarded — it can never be Released")
			}
		}
		t.expr(st, n.X, final)
	case *ast.SendStmt:
		t.expr(st, n.Chan, final)
		if id := rootIdent(n.Value); id != nil {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := t.vars[obj]; tracked {
					t.transfer(st, obj, n.Arrow, final)
					return
				}
			}
		}
		t.expr(st, n.Value, final)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if id := rootIdent(r); id != nil {
				if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
					if _, tracked := t.vars[obj]; tracked {
						t.use(st, id, final) // returning a released buffer is still a bug
						t.escape(st, obj)    // ownership moves to the caller
						continue
					}
				}
			}
			t.expr(st, r, final)
		}
	case *ast.DeferStmt:
		// Registration: argument values are read now, effects apply at
		// exit (see deferred). Non-release deferred calls are opaque —
		// treat them as escapes immediately.
		if t.releaseTarget(n.Call) == nil {
			t.call(st, n.Call, final)
		} else {
			for _, a := range n.Call.Args {
				t.expr(st, a, final)
			}
		}
	case *ast.GoStmt:
		t.call(st, n.Call, final)
	case *ast.RangeStmt:
		t.expr(st, n.X, final)
		for _, kv := range []ast.Expr{n.Key, n.Value} {
			if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
				if obj := identObj(t.pass.TypesInfo, id); obj != nil {
					t.escape(st, obj) // loop var rebinds every iteration
				}
			}
		}
	case *ast.IncDecStmt:
		t.expr(st, n.X, final)
	case ast.Expr:
		t.expr(st, n, final)
	case ast.Stmt:
		// Remaining simple statements (LabeledStmt leftovers, etc.):
		// walk any expressions they contain.
		ast.Inspect(n, func(c ast.Node) bool {
			if e, ok := c.(ast.Expr); ok {
				t.expr(st, e, final)
				return false
			}
			return true
		})
	}
}

// valueSpec handles `var x = expr` declarations like assignments.
func (t *bufTracker) valueSpec(st flowState, vs *ast.ValueSpec, final bool) {
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			if t.tryAcquire(st, name, vs.Values[i], final) {
				continue
			}
			t.expr(st, vs.Values[i], final)
		}
	}
}

// tryAcquire handles `lhs := <origin>` when rhs is an acquisition,
// returning true if it was.
func (t *bufTracker) tryAcquire(st flowState, lhs ast.Expr, rhs ast.Expr, final bool) bool {
	kind, isOrigin := bufKind(0), false
	var originPos token.Pos
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		kind, isOrigin = t.originOf(r)
		if isOrigin {
			for _, a := range r.Args {
				t.expr(st, a, final)
			}
			originPos = r.Pos()
		}
	case *ast.UnaryExpr:
		if r.Op == token.ARROW {
			if typ := t.pass.TypesInfo.TypeOf(r); typ != nil && isMessageType(typ) {
				kind, isOrigin = kindMsg, true
				t.expr(st, r.X, final)
				originPos = r.Pos()
			}
		}
	}
	if !isOrigin {
		return false
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return true // acquired straight into a field/blank: untracked
	}
	obj := identObj(t.pass.TypesInfo, id)
	if obj == nil {
		return true
	}
	if prev, tracked := st[obj]; tracked && prev&stOwned != 0 && final {
		if v, known := t.vars[obj]; known && v.kind == kindBuf {
			t.flag(originPos, v.origin, "%s is reacquired while a previous pooled buffer it holds may still be owned (Release before re-Get)", id.Name)
		}
	}
	st[obj] = stOwned
	t.vars[obj] = ownedVar{kind: kind, origin: originPos, name: id.Name}
	return true
}

func (t *bufTracker) assign(st flowState, a *ast.AssignStmt, final bool) {
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Rhs {
			if t.tryAcquire(st, a.Lhs[i], a.Rhs[i], final) {
				continue
			}
			t.expr(st, a.Rhs[i], final)
			t.lhs(st, a.Lhs[i], a.Rhs[i], final)
		}
		return
	}
	// Multi-value call or comma-ok: no buffer origin has that shape.
	for _, r := range a.Rhs {
		t.expr(st, r, final)
	}
	for _, l := range a.Lhs {
		t.lhs(st, l, nil, final)
	}
}

// lhs applies the store side of one assignment pair.
func (t *bufTracker) lhs(st flowState, l ast.Expr, r ast.Expr, final bool) {
	// Storing a tracked buffer anywhere hands ownership off.
	if r != nil {
		if id := rootIdent(r); id != nil {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := t.vars[obj]; tracked {
					t.escape(st, obj)
				}
			}
		}
	}
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := identObj(t.pass.TypesInfo, l); obj != nil {
			// Overwritten: whatever it held is no longer reachable
			// through this name. (Leak-on-overwrite is reported only
			// for the unambiguous reacquisition case in tryAcquire.)
			t.escape(st, obj)
		}
	default:
		t.expr(st, l, final)
	}
}

// releaseTarget returns the object a call releases (bufpool.Put's
// argument, a Message Release receiver), or nil.
func (t *bufTracker) releaseTarget(call *ast.CallExpr) types.Object {
	if t.isPoolPut(call) && len(call.Args) == 1 {
		if id := rootIdent(call.Args[0]); id != nil {
			return t.pass.TypesInfo.Uses[id]
		}
	}
	if t.isMsgRelease(call) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id := rootIdent(sel.X); id != nil {
				return t.pass.TypesInfo.Uses[id]
			}
		}
	}
	return nil
}

func (t *bufTracker) call(st flowState, call *ast.CallExpr, final bool) {
	if obj := t.releaseTarget(call); obj != nil {
		if _, tracked := t.vars[obj]; tracked {
			t.release(st, obj, call.Pos(), final)
			return
		}
	}
	if i := t.sendPayloadArg(call); i >= 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t.expr(st, sel.X, final)
		}
		// All arguments evaluate before the send runs: walk the
		// non-payload ones first so `Send(p, tag, buf, len(buf))`
		// never reads as use-after-transfer.
		var payload types.Object
		var payloadPos token.Pos
		for j, a := range call.Args {
			if j == i {
				if id := rootIdent(a); id != nil {
					if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
						if _, tracked := t.vars[obj]; tracked {
							payload, payloadPos = obj, a.Pos()
							continue
						}
					}
				}
			}
			t.expr(st, a, final)
		}
		if payload != nil {
			t.transfer(st, payload, payloadPos, final)
		}
		return
	}
	// len/cap/copy read the buffer without taking ownership; every
	// other builtin with a slice argument (append) may retain it.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := t.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "len", "cap", "copy":
				for _, a := range call.Args {
					t.expr(st, a, final)
				}
				return
			}
		}
	}
	// Ordinary call: tracked arguments escape into the callee.
	t.expr(st, call.Fun, final)
	for _, a := range call.Args {
		if id := rootIdent(a); id != nil {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := t.vars[obj]; tracked {
					t.use(st, id, final) // passing a released buffer is a bug
					t.escape(st, obj)
					continue
				}
			}
		}
		t.expr(st, a, final)
	}
}

// expr walks an expression for uses, calls, captures and escapes.
func (t *bufTracker) expr(st flowState, e ast.Expr, final bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			t.call(st, n, final)
			return false
		case *ast.FuncLit:
			t.captureEscape(st, n)
			return false
		case *ast.SelectorExpr:
			// m.Payload after Release is the only field access that
			// matters; other Message fields (From, Corr, ...) survive
			// Release by contract.
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
					if v, tracked := t.vars[obj]; tracked && v.kind == kindMsg {
						if s, in := st[obj]; in && final && n.Sel.Name == "Payload" && s&stReleased != 0 {
							t.flag(n.Pos(), v.origin, "%s.Payload may be read after Release returned the buffer to the pool", v.name)
						}
						return false
					}
				}
			}
			t.expr(st, n.X, final)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if id := rootIdent(el); id != nil {
					if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
						if _, tracked := t.vars[obj]; tracked {
							t.use(st, id, final)
							t.escape(st, obj)
							continue
						}
					}
				}
				t.expr(st, el, final)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Address taken: anything could happen through the
				// pointer — stop tracking idents underneath.
				if id := rootIdent(n.X); id != nil {
					if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
						t.escape(st, obj)
						return false
					}
				}
			}
			return true
		case *ast.Ident:
			t.use(st, n, final)
		}
		return true
	})
}

// captureEscape untracks every variable a closure captures: the
// closure body is analyzed as its own function and may release or keep
// anything it closed over.
func (t *bufTracker) captureEscape(st flowState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := t.vars[obj]; tracked {
					t.escape(st, obj)
				}
			}
		}
		return true
	})
}

func (t *bufTracker) refine(st flowState, cond ast.Expr, when bool) {
	obj, nonNilWhen, ok := errRefinement(t.pass.TypesInfo, cond)
	if !ok {
		return
	}
	// `if buf == nil` / `if buf != nil`: the nil branch holds nothing.
	if _, tracked := t.vars[obj]; tracked && nonNilWhen != when {
		delete(st, obj)
	}
}

func (t *bufTracker) deferred(st flowState, d *ast.DeferStmt, final bool) {
	obj := t.releaseTarget(d.Call)
	if obj == nil {
		return
	}
	if _, tracked := t.vars[obj]; tracked {
		t.release(st, obj, d.Pos(), final)
	}
}

func (t *bufTracker) exit(st flowState, pos token.Pos, panicking, final bool) {
	if !final || panicking {
		return
	}
	var leaked []types.Object
	for obj, s := range st {
		if v, ok := t.vars[obj]; ok && v.kind == kindBuf && s&stOwned != 0 {
			leaked = append(leaked, obj)
		}
	}
	sort.Slice(leaked, func(i, j int) bool {
		return t.vars[leaked[i]].origin < t.vars[leaked[j]].origin
	})
	for _, obj := range leaked {
		v := t.vars[obj]
		t.flag(pos, v.origin, "pooled buffer %s may reach this return still owned — Release it or send it on every path (leak to GC)", v.name)
	}
}
