package analyzers

// cfg.go builds the intraprocedural control-flow graphs the flow
// analyzers (bufownership, resourcelifetime) run over. The graph is
// deliberately small: blocks hold *atomic* nodes only — simple
// statements and the condition/header expressions of compound
// statements — so a dataflow transfer function can walk a node's
// subtree without ever seeing a nested branch. Compound statements
// (if/for/range/switch/select) are decomposed into blocks and edges;
// `goto` marks the whole function unanalyzable (none of the engine
// uses it), and explicit `panic(...)` calls terminate a block with a
// panic exit so teardown checks can treat crash paths separately from
// ordinary returns.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block terminators. A block with termNone and no successors falls off
// the end of the function, which the builder normalizes to termReturn.
const (
	termNone = iota
	termReturn
	termPanic
)

// cfgEdge is one control transfer. When cond is non-nil the edge is
// taken iff cond evaluates to `when`; trackers use this to refine
// state along `if err != nil` branches.
type cfgEdge struct {
	to   *cfgBlock
	cond ast.Expr
	when bool
}

// cfgBlock is a straight-line run of atomic nodes.
type cfgBlock struct {
	index   int
	nodes   []ast.Node
	succs   []cfgEdge
	term    int
	termPos token.Pos
}

// funcCFG is one function body's graph plus its deferred calls, which
// the engine replays (last-in first-out) at every exit.
type funcCFG struct {
	blocks []*cfgBlock
	defers []*ast.DeferStmt
	ok     bool // false: goto present, analysis skipped
}

// loopCtx records where break/continue jump for one enclosing loop or
// breakable statement (switch/select have breakTo only).
type loopCtx struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select
}

type cfgBuilder struct {
	info   *types.Info
	blocks []*cfgBlock
	cur    *cfgBlock
	loops  []loopCtx
	defers []*ast.DeferStmt
	// fallTo is the next case clause's block while building a switch
	// clause, the target of a `fallthrough` statement.
	fallTo *cfgBlock
	// pendingLabel names the next loop/switch statement, set by an
	// enclosing *ast.LabeledStmt.
	pendingLabel string
	bad          bool
}

// buildCFG constructs the graph for one function body (a FuncDecl's or
// FuncLit's). end anchors the implicit return of a body that falls off
// its closing brace.
func buildCFG(info *types.Info, body *ast.BlockStmt, end token.Pos) *funcCFG {
	b := &cfgBuilder{info: info}
	b.cur = b.newBlock()
	b.stmts(body.List)
	if b.cur != nil {
		b.cur.term = termReturn
		b.cur.termPos = end
	}
	if b.bad {
		return &funcCFG{ok: false}
	}
	return &funcCFG{blocks: b.blocks, defers: b.defers, ok: true}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// add appends an atomic node to the current block, opening a fresh
// (unreachable) block after a terminator if needed.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func edge(from, to *cfgBlock, cond ast.Expr, when bool) {
	if from == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, when: when})
}

// takeLabel consumes the label an enclosing LabeledStmt attached to
// the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether e is a call of the predeclared panic.
func (b *cfgBuilder) isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			// A bare label is a goto target; give up like goto does.
			b.bad = true
			b.stmt(s.Stmt)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		edge(head, thenB, s.Cond, true)
		b.cur = thenB
		b.stmt(s.Body)
		edge(b.cur, join, nil, false)
		if s.Else != nil {
			elseB := b.newBlock()
			edge(head, elseB, s.Cond, false)
			b.cur = elseB
			b.stmt(s.Else)
			edge(b.cur, join, nil, false)
		} else {
			edge(head, join, s.Cond, false)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		edge(b.cur, head, nil, false)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head = b.cur // add may not move cur, but keep the invariant local
		after := b.newBlock()
		contTo := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		body := b.newBlock()
		if s.Cond != nil {
			edge(head, body, s.Cond, true)
			edge(head, after, s.Cond, false)
		} else {
			edge(head, body, nil, false)
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body)
		edge(b.cur, contTo, nil, false)
		b.loops = b.loops[:len(b.loops)-1]
		if post != nil {
			b.cur = post
			b.add(s.Post)
			edge(b.cur, head, nil, false)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		edge(b.cur, head, nil, false)
		b.cur = head
		// The RangeStmt itself is the head's atomic node: trackers read
		// X/Key/Value from it and must not descend into Body.
		b.add(s)
		after := b.newBlock()
		body := b.newBlock()
		edge(head, body, nil, false)
		edge(head, after, nil, false)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		edge(b.cur, head, nil, false)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		reachable := len(s.Body.List) == 0
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cb := b.newBlock()
			edge(head, cb, nil, false)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			if b.cur != nil {
				edge(b.cur, after, nil, false)
				reachable = true
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		if reachable {
			b.cur = after
		} else {
			b.cur = nil
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.bad = true
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				edge(b.cur, b.fallTo, nil, false)
			}
			b.cur = nil
		case token.BREAK:
			if t := b.findLoop(s.Label, false); t != nil {
				edge(b.cur, t, nil, false)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findLoop(s.Label, true); t != nil {
				edge(b.cur, t, nil, false)
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur.term = termReturn
		b.cur.termPos = s.Pos()
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if b.isPanicCall(s.X) {
			b.cur.term = termPanic
			b.cur.termPos = s.Pos()
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

// switchClauses builds the clause blocks of a (type) switch. caseExprs,
// when non-nil, emits each clause's case expressions into the head
// block (they are all evaluated there in source order).
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, caseExprs func(*ast.CaseClause)) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	if caseExprs != nil {
		for _, cl := range clauses {
			caseExprs(cl.(*ast.CaseClause))
		}
		head = b.cur
	}
	after := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = b.newBlock()
		edge(head, blocks[i], nil, false)
		if len(cl.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, after, nil, false)
	}
	savedFall := b.fallTo
	for i, cl := range clauses {
		if i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		b.cur = blocks[i]
		b.stmts(cl.(*ast.CaseClause).Body)
		edge(b.cur, after, nil, false)
	}
	b.fallTo = savedFall
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// findLoop resolves a break/continue target, optionally labeled.
// continue skips non-loop contexts (switch/select).
func (b *cfgBuilder) findLoop(label *ast.Ident, cont bool) *cfgBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := b.loops[i]
		if cont && lc.continueTo == nil {
			continue
		}
		if label != nil && lc.label != label.Name {
			continue
		}
		if cont {
			return lc.continueTo
		}
		return lc.breakTo
	}
	return nil
}
