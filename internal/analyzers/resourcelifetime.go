package analyzers

// resourcelifetime applies the cfg.go/dataflow.go engine to the fabric
// plane's long-lived resources: net.Conn / net.Listener values,
// transport fabrics, and anything returned by a function whose doc
// carries //pslint:acquires. Scope is deliberately narrow — the
// packages that own sockets (internal/transport, internal/obs/live) —
// because that is where a missed Close turns into a leaked fd per
// session once cmd/pssrv multiplies these paths.
//
// The invariant: every acquire reaches a Close or Abort on every
// ordinary path out of the function, including the error returns that
// are easiest to get wrong. Escapes (storing the conn in a struct,
// handing it to a goroutine or callee, returning it) transfer the
// obligation and end tracking; explicit panic exits are crash paths
// and exempt. `c, err := Dial(...)` acquisitions are linked to their
// error variable, and `if err != nil` branch edges drop the resource
// on the error side — on failure there is nothing to close.
//
// A second, syntactic check guards goroutine spawn in loops: a
// `go` statement whose innermost enclosing loop has no WaitGroup.Add
// bound is an unbounded spawn — the accept-loop shape must tie every
// reader goroutine to a wait/abort mechanism.
//
// Suppress with //pslint:lifetime-ok <reason> on the finding's line or
// the acquisition line.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

var ResourceLifetime = &Analyzer{
	Name: "resourcelifetime",
	Doc: "flow-sensitive teardown discipline for conns, listeners and fabrics: every acquire " +
		"reaches Close/Abort on all paths, and loop-spawned goroutines are bounded",
	Run: runResourceLifetime,
}

// lifetimePackages scopes the analyzer, matched like enginePackages:
// by path tail for both real module paths and bare testdata paths.
var lifetimePackages = map[string]bool{
	"transport": true,
	"live":      true,
	"rl":        true, // testdata
}

func isLifetimePackage(pkgPath string) bool {
	if strings.HasSuffix(pkgPath, ".test") || strings.HasSuffix(pkgPath, "_test") {
		return false
	}
	base := pkgPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if !lifetimePackages[base] {
		return false
	}
	return pkgPath == base || strings.HasPrefix(pkgPath, "pscluster/internal/")
}

func runResourceLifetime(pass *Pass) error {
	if !isLifetimePackage(pass.Pkg.Path()) {
		return nil
	}
	acquires := directiveFuncs(pass, "acquires")
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, fb := range funcBodies(f) {
			t := &rlTracker{
				pass:     pass,
				acquires: acquires,
				vars:     map[types.Object]rlVar{},
				errLinks: map[types.Object][]errLink{},
				seen:     map[string]bool{},
			}
			runFlow(buildCFG(pass.TypesInfo, fb.body, fb.body.Rbrace), t)
			t.checkLoopGoroutines(fb.body)
		}
	}
	return nil
}

// rlVar is the per-resource bookkeeping.
type rlVar struct {
	label  string // "net.Conn", "net.Listener", "transport.NetFabric", ...
	origin token.Pos
	name   string
}

// errLink ties one acquisition to the error variable assigned next to
// it, positionally: a later `if err != nil` refines only the latest
// acquisition textually before it, so re-using one err variable across
// several dials (the idiomatic shape) keeps earlier conns tracked.
type errLink struct {
	res types.Object
	pos token.Pos
}

type rlTracker struct {
	pass     *Pass
	acquires map[*types.Func]bool
	vars     map[types.Object]rlVar
	errLinks map[types.Object][]errLink
	seen     map[string]bool
}

func (t *rlTracker) flag(pos, origin token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	var alt []token.Pos
	if origin.IsValid() {
		alt = []token.Pos{origin}
	}
	t.pass.FlagAt(pos, alt, "lifetime-ok", "%s", msg)
}

// netAcquireFuncs are the package-net entry points that hand the
// caller a live fd.
var netAcquireFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenPacket": true,
	"FileListener": true, "FileConn": true,
}

// closeableType labels a type that carries a teardown obligation, or
// returns "" for everything else.
func closeableType(typ types.Type) string {
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	n, ok := typ.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	base := path.Base(n.Obj().Pkg().Path())
	name := n.Obj().Name()
	switch {
	case base == "net" && (name == "Conn" || name == "Listener" || name == "TCPConn" ||
		name == "TCPListener" || name == "UDPConn" || name == "PacketConn"):
		return "net." + name
	case base == "transport" && (name == "Fabric" || name == "NetFabric"):
		return "transport." + name
	}
	return base + "." + name
}

// acquireOf classifies an acquisition call and returns the label of
// the resource it yields.
func (t *rlTracker) acquireOf(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(t.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	first := sig.Results().At(0).Type()
	label := closeableType(first)
	base := path.Base(funcPkgPath(fn))
	switch {
	case t.acquires[fn]:
		if label == "" {
			label = "resource"
		}
		return label, true
	case base == "net" && netAcquireFuncs[fn.Name()]:
		return label, true
	case (fn.Name() == "Accept" || fn.Name() == "AcceptTCP") && strings.HasPrefix(label, "net."):
		return label, true
	case base == "transport" && fn.Name() == "ListenNet":
		return label, true
	}
	return "", false
}

// isTeardown matches c.Close() / f.Abort() on a tracked receiver and
// returns the receiver object.
func (t *rlTracker) teardownTarget(call *ast.CallExpr) types.Object {
	fn := calleeFunc(t.pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Close" && fn.Name() != "Abort") {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id := rootIdent(sel.X); id != nil {
		return t.pass.TypesInfo.Uses[id]
	}
	return nil
}

// --- flowTracker -------------------------------------------------------

func (t *rlTracker) node(st flowState, n ast.Node, final bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(st, n, final)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			t.escapeExpr(st, r)
		}
	case *ast.DeferStmt:
		if t.teardownTarget(n.Call) == nil {
			// Opaque deferred call: captured resources escape.
			t.escapeExpr(st, n.Call)
		}
	case *ast.GoStmt:
		t.escapeExpr(st, n.Call)
	case *ast.SendStmt:
		t.escapeExpr(st, n.Value)
	case *ast.RangeStmt:
		// Head node only — the body has its own blocks.
		t.escapeExpr(st, n.X)
	case ast.Node:
		// Everything else: teardown calls release, other calls and
		// stores make tracked resources escape.
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.CallExpr:
				if obj := t.teardownTarget(c); obj != nil {
					if _, tracked := st[obj]; tracked {
						st[obj] = stReleased
						return false
					}
				}
				// Receiver method calls (c.Write, ln.Addr) are uses,
				// not escapes; arguments escape.
				if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
					t.nodeInner(st, sel.X, final)
				}
				for _, a := range c.Args {
					t.escapeExpr(st, a)
				}
				return false
			case *ast.FuncLit:
				t.escapeExpr(st, c)
				return false
			case *ast.CompositeLit:
				t.escapeExpr(st, c)
				return false
			}
			return true
		})
	}
}

// nodeInner re-walks a sub-expression with full node semantics (used
// for call receivers, which may themselves contain calls).
func (t *rlTracker) nodeInner(st flowState, e ast.Expr, final bool) {
	if e == nil {
		return
	}
	t.node(st, e, final)
}

// escapeExpr untracks every tracked identifier appearing anywhere in
// e: stored, captured, sent or passed on — the obligation moved.
func (t *rlTracker) escapeExpr(st flowState, e ast.Node) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
				if _, tracked := t.vars[obj]; tracked {
					delete(st, obj)
				}
			}
		}
		return true
	})
}

func (t *rlTracker) assign(st flowState, a *ast.AssignStmt, final bool) {
	// `c, err := acquire(...)` and `c := acquire(...)`.
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if label, isAcq := t.acquireOf(call); isAcq {
				for _, arg := range call.Args {
					t.escapeExpr(st, arg)
				}
				t.trackAcquire(st, a.Lhs, call, label)
				return
			}
		}
	}
	for _, r := range a.Rhs {
		t.node(st, r, final)
		t.escapeExpr(st, r) // aliasing or storing transfers the obligation
	}
	for _, l := range a.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(t.pass.TypesInfo, id); obj != nil {
				delete(st, obj) // overwritten
			}
		} else {
			t.escapeExpr(st, l)
		}
	}
}

func (t *rlTracker) trackAcquire(st flowState, lhs []ast.Expr, call *ast.CallExpr, label string) {
	id, ok := lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return // acquired into a field or blank: escaped at birth
	}
	obj := identObj(t.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	st[obj] = stOwned
	t.vars[obj] = rlVar{label: label, origin: call.Pos(), name: id.Name}
	if len(lhs) == 2 {
		if errID, ok := lhs[1].(*ast.Ident); ok && errID.Name != "_" {
			if errObj := identObj(t.pass.TypesInfo, errID); errObj != nil {
				t.errLinks[errObj] = append(t.errLinks[errObj], errLink{res: obj, pos: call.Pos()})
			}
		}
	}
}

func (t *rlTracker) refine(st flowState, cond ast.Expr, when bool) {
	obj, nonNilWhen, ok := errRefinement(t.pass.TypesInfo, cond)
	if !ok {
		return
	}
	// The branch where err != nil holds no live resource from the
	// acquisition this check actually guards: the latest one linked to
	// err before the condition.
	if nonNilWhen == when {
		var latest types.Object
		var latestPos token.Pos
		for _, l := range t.errLinks[obj] {
			if l.pos < cond.Pos() && l.pos >= latestPos {
				latest, latestPos = l.res, l.pos
			}
		}
		if latest != nil {
			delete(st, latest)
		}
	}
	// `if c == nil { ... }`: the nil branch holds nothing either.
	if _, tracked := t.vars[obj]; tracked && nonNilWhen != when {
		delete(st, obj)
	}
}

func (t *rlTracker) deferred(st flowState, d *ast.DeferStmt, final bool) {
	if obj := t.teardownTarget(d.Call); obj != nil {
		if _, tracked := st[obj]; tracked {
			st[obj] = stReleased
		}
	}
}

func (t *rlTracker) exit(st flowState, pos token.Pos, panicking, final bool) {
	if !final || panicking {
		return
	}
	var leaked []types.Object
	for obj, s := range st {
		if _, ok := t.vars[obj]; ok && s&stOwned != 0 {
			leaked = append(leaked, obj)
		}
	}
	sort.Slice(leaked, func(i, j int) bool {
		return t.vars[leaked[i]].origin < t.vars[leaked[j]].origin
	})
	for _, obj := range leaked {
		v := t.vars[obj]
		t.flag(pos, v.origin, "%s %s may reach this return without Close/Abort — tear it down on every path, including error returns", v.label, v.name)
	}
}

// --- loop-spawned goroutines ------------------------------------------

// checkLoopGoroutines flags `go` statements whose innermost enclosing
// loop lacks a WaitGroup.Add bound: an unbounded spawn per iteration.
// The walk stops at FuncLit boundaries — literals are visited as their
// own bodies.
func (t *rlTracker) checkLoopGoroutines(body *ast.BlockStmt) {
	var walk func(n ast.Node, loop *ast.BlockStmt)
	walk = func(n ast.Node, loop *ast.BlockStmt) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				walkStmtsExceptBody(c, func(sub ast.Node) { walk(sub, loop) })
				walk(c.Body, c.Body)
				return false
			case *ast.RangeStmt:
				walk(c.Body, c.Body)
				return false
			case *ast.GoStmt:
				if loop != nil && !t.loopBounds(loop) {
					t.flag(c.Pos(), token.NoPos,
						"goroutine started per loop iteration without a WaitGroup bound (wg.Add before go) — unbounded spawn")
				}
				return true
			}
			return true
		})
	}
	walk(body, nil)
}

// walkStmtsExceptBody visits a for statement's init/cond/post so
// nested function literals there still get walked with the outer loop
// context.
func walkStmtsExceptBody(f *ast.ForStmt, visit func(ast.Node)) {
	if f.Init != nil {
		visit(f.Init)
	}
	if f.Cond != nil {
		visit(f.Cond)
	}
	if f.Post != nil {
		visit(f.Post)
	}
}

// loopBounds reports whether the loop body ties spawned goroutines to
// a sync.WaitGroup (an Add call on one, at any depth outside nested
// literals' own loops).
func (t *rlTracker) loopBounds(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(t.pass.TypesInfo, call)
		if fn != nil && fn.Name() == "Add" && recvTypeName(fn) == "WaitGroup" {
			found = true
		}
		return true
	})
	return found
}
