package analyzers

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the model's bit-reproducibility invariant in the
// engine packages (internal/core, internal/particle, internal/actions,
// internal/loadbalance): a run is a pure function of the scenario, so
// engine code must not read host wall time (time.Now/Since/Until), must
// not draw from the unseeded process-global math/rand source, and must
// not iterate a map in unordered key order — Go randomizes map
// iteration per run, so anything fed from such a loop (donation orders,
// trace events, wire payloads) would differ between bit-identical
// inputs. A map range is allowed when it only collects keys for
// sorting, or when the site carries //pslint:nondeterministic-ok with a
// reason.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global rand and unordered map iteration " +
		"in the engine packages",
	Run: runDeterminism,
}

// wallClockFuncs are the time-package functions that read the host
// clock. time.Sleep is included: engine code waits on virtual time
// fuses, never on the host scheduler.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// seededRandCtors are the math/rand (and v2) package-level functions
// that construct explicitly-seeded generators — the one sanctioned way
// to use rand in the engine.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !isEnginePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch funcPkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] && recvTypeName(fn) == "" {
			if pass.suppressed(call.Pos(), "nondeterministic-ok") {
				return
			}
			pass.Reportf(call.Pos(),
				"determinism: time.%s reads the host wall clock; engine code must use the virtual Clock",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand operate on an explicitly-constructed,
		// explicitly-seeded source and are fine; package-level calls
		// (other than the source constructors) draw from the shared
		// global source, whose sequence is not a function of the
		// scenario.
		if recvTypeName(fn) != "" || seededRandCtors[fn.Name()] {
			return
		}
		if pass.suppressed(call.Pos(), "nondeterministic-ok") {
			return
		}
		pass.Reportf(call.Pos(),
			"determinism: %s.%s draws from the process-global rand source; use a seeded *rand.Rand",
			funcPkgPath(fn), fn.Name())
	}
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isKeyCollectLoop(pass, rng) {
		return
	}
	if pass.suppressed(rng.Pos(), "nondeterministic-ok") {
		return
	}
	pass.Reportf(rng.Pos(),
		"determinism: map iteration order is randomized per run; sort the keys first "+
			"or annotate //pslint:nondeterministic-ok <reason>")
}

// isKeyCollectLoop recognizes the one blessed map-range shape — the
// collect-then-sort idiom:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// a single append of the key into a slice, with no value variable. Any
// other body must prove its order-independence via annotation.
func isKeyCollectLoop(pass *Pass, rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && pass.TypesInfo.Uses[arg] == pass.TypesInfo.Defs[key]
}
