// Package analyzers is the engine's static-analysis suite: six
// checkers that mechanically enforce the invariants the paper's model
// depends on — bit-deterministic runs (virtual Clock advancement, no
// wall-clock reads, ordered iteration), allocation-free hot paths,
// paired observability spans, and — through the flow-sensitive engine
// in cfg.go/dataflow.go — the pooled-buffer ownership contract and the
// teardown discipline of fabric resources. The suite is run over the
// whole tree by cmd/pslint through `go vet -vettool=` (see
// `make lint`), and each analyzer carries its own testdata tree
// exercised by the analyzertest harness.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// an Analyzer with a Run(*Pass) hook reporting position-tagged
// diagnostics — but is built on the standard library alone
// (go/ast, go/types, go/token), so the repo stays dependency-free.
//
// Deliberate violations are suppressed in source with pslint
// directives, each of which must carry a reason:
//
//	//pslint:nondeterministic-ok <reason>   (determinism)
//	//pslint:clock-ok <reason>              (clockdiscipline)
//	//pslint:span-ok <reason>               (spanpairing)
//	//pslint:own-ok <reason>                (bufownership)
//	//pslint:lifetime-ok <reason>           (resourcelifetime)
//
// hot-path functions opt in to the allocation checks with a
// //pslint:hotpath line in their doc comment, functions returning a
// pooled wire buffer declare it with //pslint:pooled, and functions
// acquiring a closeable resource declare it with //pslint:acquires.
//
// Suppressed findings are not discarded: they are emitted with
// Diagnostic.Suppressed set, so drivers can either hide them (the vet
// text protocol) or surface them for audit (pslint -json).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check: a name (the diagnostic prefix and the
// documentation key), a one-paragraph doc string stating the invariant
// it encodes, and the Run hook applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through an
// analyzer run. Report appends a diagnostic; the driver (cmd/pslint or
// the analyzertest harness) decides how diagnostics are rendered.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives caches the per-file pslint directive index.
	directives map[*ast.File]*directiveIndex
}

// Diagnostic is one finding at one source position. Suppressed marks a
// finding covered by a reasoned //pslint:<directive> annotation; such
// findings are hidden by the vet text protocol but kept for -json
// output and the analyzertest `// want-suppressed` clauses.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Suppressed bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Flag reports a finding at pos that the named directive can suppress.
// A directive on the finding's line (or the line above) marks the
// diagnostic Suppressed instead of dropping it; a directive without a
// reason additionally earns a "needs a reason" finding, so silent
// opt-outs are impossible.
func (p *Pass) Flag(pos token.Pos, directive, format string, args ...any) {
	p.FlagAt(pos, nil, directive, format, args...)
}

// FlagAt is Flag with extra positions whose lines may also carry the
// suppression directive. Flow analyzers use it so a leak reported at a
// `return` can be waived either there or at the acquisition site.
func (p *Pass) FlagAt(pos token.Pos, alt []token.Pos, directive, format string, args ...any) {
	sup := false
	for _, at := range append([]token.Pos{pos}, alt...) {
		d, ok := p.suppression(at, directive)
		if !ok {
			continue
		}
		sup = true
		if d.reason == "" {
			p.Reportf(pos, "//pslint:%s needs a reason: state why this site may break the invariant", directive)
		}
		break
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Suppressed: sup})
}

// Suite returns every analyzer of the pslint suite, in the order they
// are documented in DESIGN.md.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		HotpathAlloc,
		ClockDiscipline,
		SpanPairing,
		BufOwnership,
		ResourceLifetime,
	}
}

// enginePackages are the packages whose code drives the simulation
// model itself; the determinism and clock-discipline invariants apply
// only here. Matched by the path tail so both the real module paths
// (pscluster/internal/core) and the bare testdata paths (core) qualify.
var enginePackages = map[string]bool{
	"core":        true,
	"particle":    true,
	"actions":     true,
	"loadbalance": true,
	"domain":      true,
}

// isEnginePackage reports whether path names one of the engine
// packages. Vet runs analyzers over test variants too, whose IDs carry
// a " [pkg.test]" suffix; that suffix never reaches here because the
// driver strips it, but a trailing ".test" or "_test" package is
// rejected so synthesized test-main packages stay out of scope.
func isEnginePackage(path string) bool {
	if strings.HasSuffix(path, ".test") || strings.HasSuffix(path, "_test") {
		return false
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if !enginePackages[base] {
		return false
	}
	return path == base || strings.HasPrefix(path, "pscluster/internal/")
}

// isTestFile reports whether the file behind pos is a _test.go file.
// The suite checks production code only: tests freely use maps, wall
// time and closures, and flagging them would bury the real findings.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// calleeFunc resolves a call expression to the function or method
// object it invokes, or nil for calls through function values,
// conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the import path of the package a function object
// belongs to ("" for builtins and error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the bare type name of a method's receiver
// ("Clock" for func (c *Clock) AdvanceWork), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
