package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc enforces the data plane's zero-allocation discipline.
// Functions annotated //pslint:hotpath in their doc comment — the
// ApplyBatch column kernels, the wire codecs (EncodeWire /
// DecodeWireInto), the ghost exchange — run once per particle batch per
// frame, and BENCH_dataplane.json tracks them at 0–1 allocs/op. Inside
// such a function the analyzer flags the allocation shapes that have
// historically crept in:
//
//   - fmt.Sprintf / Sprint / Sprintln (always allocate; fmt.Errorf is
//     exempt — error construction is the cold failure path);
//   - x = append(x, ...) inside a loop when x is a local slice declared
//     without capacity (per-iteration growth reallocations);
//   - function literals that capture enclosing variables (the closure
//     and its captures escape to the heap);
//   - interface boxing: passing or converting a concrete non-pointer
//     value to an interface parameter (the value is heap-boxed).
//
// A finding whose allocation is deliberate (e.g. a once-per-exchange
// closure required by a store's iteration API) is silenced with
// //pslint:alloc-ok <reason> on or above the flagged line.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocating constructs (fmt formatting, un-capped append growth, " +
		"escaping closures, interface boxing) in //pslint:hotpath functions",
	Run: runHotpathAlloc,
}

// fmtAllocFuncs are the fmt calls flagged in hot paths. fmt.Errorf is
// deliberately absent: error construction sits on the cold failure
// path of a codec and only allocates when the input is already bad.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
}

func runHotpathAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, "hotpath") {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
	return nil
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	localInits := localSliceInits(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, n)
		case *ast.FuncLit:
			checkClosureCapture(pass, fd, n)
			return false // captures inside nested literals charge to the literal
		case *ast.ForStmt:
			checkAppendGrowth(pass, n.Body, localInits)
		case *ast.RangeStmt:
			checkAppendGrowth(pass, n.Body, localInits)
		}
		return true
	})
}

// checkHotpathCall flags fmt formatting calls and interface boxing of
// concrete arguments.
func checkHotpathCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn != nil && funcPkgPath(fn) == "fmt" {
		if fmtAllocFuncs[fn.Name()] && !pass.suppressed(call.Pos(), "alloc-ok") {
			pass.Reportf(call.Pos(),
				"hotpathalloc: fmt.%s allocates; hot-path code must format outside the kernel",
				fn.Name())
		}
		// Skip the boxing check for all fmt calls: the flagged ones
		// would double-report, and fmt.Errorf's boxing sits on the cold
		// failure path.
		return
	}
	// Interface conversion: T(x) where T is an interface and x is not.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if boxes(pass.TypesInfo.TypeOf(call.Args[0]), tv.Type) &&
			!pass.suppressed(call.Pos(), "alloc-ok") {
			pass.Reportf(call.Pos(),
				"hotpathalloc: conversion to %s boxes the value on the heap", tv.Type.String())
		}
		return
	}
	// Arguments assigned to interface parameters box their values.
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt != nil && boxes(pass.TypesInfo.TypeOf(arg), pt) &&
			!pass.suppressed(arg.Pos(), "alloc-ok") {
			pass.Reportf(arg.Pos(),
				"hotpathalloc: passing %s as %s boxes the value on the heap",
				pass.TypesInfo.TypeOf(arg).String(), pt.String())
		}
	}
}

// paramType returns the type the i-th argument is assigned to,
// unwrapping the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether assigning a value of type from to a variable of
// type to heap-boxes it: to is an interface, from is a concrete
// non-pointer, non-interface type. Pointers and nil are exempt — they
// fit in the interface word without copying the value.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature:
		return false
	}
	if basic, ok := from.Underlying().(*types.Basic); ok &&
		basic.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// checkClosureCapture flags function literals that reference variables
// declared outside the literal but inside the hot-path function: the
// captured variables (and the closure itself) escape to the heap.
func checkClosureCapture(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	captured := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the hot function but outside the literal.
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured[v] = true
		}
		return true
	})
	if len(captured) > 0 && !pass.suppressed(lit.Pos(), "alloc-ok") {
		pass.Reportf(lit.Pos(),
			"hotpathalloc: closure captures %d enclosing variable(s); the capture escapes to the heap",
			len(captured))
	}
}

// localSliceInits maps each slice variable declared in the function to
// whether its initializer reserves capacity (make with an explicit cap,
// or a make whose single length is itself the final size).
func localSliceInits(pass *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	capped := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				v, ok := pass.TypesInfo.Defs[id].(*types.Var)
				if !ok || !isSlice(v.Type()) {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					capped[v] = reservesCapacity(pass, n.Rhs[i])
				} else {
					capped[v] = false
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || !isSlice(v.Type()) {
						continue
					}
					if i < len(vs.Values) {
						capped[v] = reservesCapacity(pass, vs.Values[i])
					} else {
						capped[v] = false
					}
				}
			}
		}
		return true
	})
	return capped
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// reservesCapacity reports whether the slice initializer pre-sizes its
// backing array: make with a cap argument, or make with a non-zero
// length (filled by index, not append).
func reservesCapacity(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return false
	}
	if len(call.Args) >= 3 {
		return true
	}
	// make([]T, n): pre-sized unless the length is literally 0.
	if len(call.Args) == 2 {
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
			return false
		}
		return true
	}
	return false
}

// checkAppendGrowth flags x = append(x, ...) inside the loop body when
// x is a function-local slice declared without reserved capacity: each
// iteration may reallocate and copy the backing array.
func checkAppendGrowth(pass *Pass, body *ast.BlockStmt, localInits map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		var v *types.Var
		if asg.Tok == token.DEFINE {
			v, _ = pass.TypesInfo.Defs[lhs].(*types.Var)
		} else {
			v, _ = pass.TypesInfo.Uses[lhs].(*types.Var)
		}
		if v == nil {
			return true
		}
		capped, isLocal := localInits[v]
		if isLocal && !capped && !pass.suppressed(asg.Pos(), "alloc-ok") {
			pass.Reportf(asg.Pos(),
				"hotpathalloc: append grows %s inside a loop without reserved capacity; "+
					"make it with an explicit cap", lhs.Name)
		}
		return true
	})
}
