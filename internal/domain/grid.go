package domain

import (
	"encoding/binary"
	"fmt"
	"math"

	"pscluster/internal/geom"
	"pscluster/internal/loadbalance"
)

// Grid is a 2-D decomposition: space is cut into cols × rows cells in
// the axisA × axisB plane (the third axis is never split — particle
// animations are shallow along one axis, and two split axes already
// break the slab degeneracy). Column cuts and row cuts move
// independently during Rebalance, after the dynamic MD grid
// decomposition of arXiv:cs/0405086: each family of cuts shifts toward
// the heavier side of its own marginal load.
//
// Rank layout is row-major: rank = row·cols + col.
type Grid struct {
	axisA, axisB geom.Axis // column axis, row axis
	colCuts      []float64 // len cols+1, along axisA
	rowCuts      []float64 // len rows+1, along axisB
	stepA, stepB float64   // max cut movement per Rebalance call
}

// SplitFactors factors n calculators into cols × rows with cols the
// largest divisor of n not exceeding √n — the squarest grid that uses
// every rank. Prime n degenerates to 1 × n (a slab along axisB).
func SplitFactors(n int) (cols, rows int) {
	cols = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			cols = d
		}
	}
	return cols, n / cols
}

// NewGrid returns an equal-spacing cols × rows grid over
// [loA, hiA] × [loB, hiB] for n calculators. stepFrac bounds each
// Rebalance cut movement to that fraction of the matching extent.
func NewGrid(axisA, axisB geom.Axis, loA, hiA, loB, hiB float64, n int, stepFrac float64) (*Grid, error) {
	if axisA == axisB {
		return nil, fmt.Errorf("domain: grid axes must differ, got %s twice", axisA)
	}
	if n < 1 {
		return nil, fmt.Errorf("domain: need at least one domain, got %d", n)
	}
	if !(loA < hiA) || !(loB < hiB) {
		return nil, fmt.Errorf("domain: empty grid space [%g,%g]x[%g,%g]", loA, hiA, loB, hiB)
	}
	if !(stepFrac > 0) || stepFrac > 0.5 {
		return nil, fmt.Errorf("domain: grid step fraction %g outside (0, 0.5]", stepFrac)
	}
	cols, rows := SplitFactors(n)
	return &Grid{
		axisA:   axisA,
		axisB:   axisB,
		colCuts: equalCuts(loA, hiA, cols),
		rowCuts: equalCuts(loB, hiB, rows),
		stepA:   (hiA - loA) * stepFrac,
		stepB:   (hiB - loB) * stepFrac,
	}, nil
}

func equalCuts(lo, hi float64, n int) []float64 {
	cuts := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		cuts[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	cuts[n] = hi // guard against floating-point drift at the last cut
	return cuts
}

// Cols returns the number of grid columns.
func (g *Grid) Cols() int { return len(g.colCuts) - 1 }

// Rows returns the number of grid rows.
func (g *Grid) Rows() int { return len(g.rowCuts) - 1 }

// N returns the number of domains.
func (g *Grid) N() int { return g.Cols() * g.Rows() }

// Kind identifies the grid strategy.
func (g *Grid) Kind() Kind { return KindGrid }

func (g *Grid) cell(rank int) (col, row int) { return rank % g.Cols(), rank / g.Cols() }

// OwnerOf returns the rank of the grid cell containing p. Called once
// per particle per exchange in the non-slab migration path.
//
//pslint:hotpath
func (g *Grid) OwnerOf(p geom.Vec3) int {
	col := ownerIn(g.colCuts, p.Component(g.axisA))
	row := ownerIn(g.rowCuts, p.Component(g.axisB))
	return row*g.Cols() + col
}

// NeighborsOf returns the ranks of the up-to-8 cells surrounding
// rank's cell, ascending (diagonals included: a particle band near a
// corner can cross into the diagonal cell).
func (g *Grid) NeighborsOf(rank int) []int {
	col, row := g.cell(rank)
	ns := make([]int, 0, 8)
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := row+dr, col+dc
			if r < 0 || r >= g.Rows() || c < 0 || c >= g.Cols() {
				continue
			}
			ns = append(ns, r*g.Cols()+c)
		}
	}
	return ns
}

// NeighborBand returns the part of rank's cell within radius of the
// boundary it shares with neighbor: a face strip for edge neighbors,
// the corner square for diagonal ones. Cut-side asymmetry matches the
// half-open cell intervals (see axisCut).
func (g *Grid) NeighborBand(rank, neighbor int, radius float64) Region {
	col, row := g.cell(rank)
	ncol, nrow := g.cell(neighbor)
	dc, dr := ncol-col, nrow-row
	if neighbor < 0 || neighbor >= g.N() || (dc == 0 && dr == 0) ||
		dc < -1 || dc > 1 || dr < -1 || dr > 1 {
		return noSpace{}
	}
	var band cutBand
	switch dc {
	case -1:
		band = append(band, axisCut{axis: g.axisA, x: g.colCuts[col] + radius, below: true})
	case 1:
		band = append(band, axisCut{axis: g.axisA, x: g.colCuts[col+1] - radius, below: false})
	}
	switch dr {
	case -1:
		band = append(band, axisCut{axis: g.axisB, x: g.rowCuts[row] + radius, below: true})
	case 1:
		band = append(band, axisCut{axis: g.axisB, x: g.rowCuts[row+1] - radius, below: false})
	}
	return band
}

// BoundaryBand returns the union of rank's neighbor bands.
func (g *Grid) BoundaryBand(rank int, radius float64) Region {
	ns := g.NeighborsOf(rank)
	u := make(anyRegion, len(ns))
	for i, n := range ns {
		u[i] = g.NeighborBand(rank, n, radius)
	}
	return u
}

// Rebalance shifts the column cuts toward the heavier columns and the
// row cuts toward the heavier rows, independently, each by at most its
// step bound. The marginal loads are plain sums over the 2-D load
// matrix, so a hot cell pulls both its column and its row cuts inward.
func (g *Grid) Rebalance(loads []float64) bool {
	if len(loads) != g.N() {
		return false
	}
	colLoads := make([]float64, g.Cols())
	rowLoads := make([]float64, g.Rows())
	for rank, l := range loads {
		col, row := g.cell(rank)
		colLoads[col] += l
		rowLoads[row] += l
	}
	movedA := loadbalance.ShiftCuts(g.colCuts, colLoads, g.stepA)
	movedB := loadbalance.ShiftCuts(g.rowCuts, rowLoads, g.stepB)
	return movedA || movedB
}

// AppendWire appends the grid wire form: header, both axes, cut
// counts, step bounds, column cuts, row cuts.
func (g *Grid) AppendWire(dst []byte) []byte {
	dst = appendWireHeader(dst, KindGrid, 2+8+16+8*(len(g.colCuts)+len(g.rowCuts)))
	dst = append(dst, byte(g.axisA), byte(g.axisB))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.colCuts)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.rowCuts)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(g.stepA))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(g.stepB))
	for _, c := range g.colCuts {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c))
	}
	for _, c := range g.rowCuts {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c))
	}
	return dst
}

func decodeGrid(p []byte) (Decomposition, error) {
	if len(p) < 26 {
		return nil, fmt.Errorf("domain: grid payload too short: %d bytes", len(p))
	}
	axisA, axisB := geom.Axis(p[0]), geom.Axis(p[1])
	if axisA > geom.AxisZ || axisB > geom.AxisZ {
		return nil, fmt.Errorf("domain: grid axis out of range (%d, %d)", p[0], p[1])
	}
	if axisA == axisB {
		return nil, fmt.Errorf("domain: grid axes equal (%s)", axisA)
	}
	nc := int(binary.LittleEndian.Uint32(p[2:]))
	nr := int(binary.LittleEndian.Uint32(p[6:]))
	if nc < 2 || nc > maxWireRanks || nr < 2 || nr > maxWireRanks {
		return nil, fmt.Errorf("domain: grid cut counts (%d, %d) out of range", nc, nr)
	}
	if want := 26 + 8*(nc+nr); len(p) != want {
		return nil, fmt.Errorf("domain: grid payload %d bytes, want %d", len(p), want)
	}
	stepA := math.Float64frombits(binary.LittleEndian.Uint64(p[10:]))
	stepB := math.Float64frombits(binary.LittleEndian.Uint64(p[18:]))
	if !finite(stepA) || !finite(stepB) || stepA < 0 || stepB < 0 {
		return nil, fmt.Errorf("domain: grid steps (%g, %g) invalid", stepA, stepB)
	}
	readCuts := func(off, n int, what string) ([]float64, error) {
		cuts := make([]float64, n)
		for i := range cuts {
			cuts[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off+8*i:]))
			if !finite(cuts[i]) {
				return nil, fmt.Errorf("domain: grid %s cut %d not finite", what, i)
			}
			if i > 0 && cuts[i] < cuts[i-1] {
				return nil, fmt.Errorf("domain: grid %s cuts not monotonic at %d", what, i)
			}
		}
		return cuts, nil
	}
	colCuts, err := readCuts(26, nc, "column")
	if err != nil {
		return nil, err
	}
	rowCuts, err := readCuts(26+8*nc, nr, "row")
	if err != nil {
		return nil, err
	}
	return &Grid{axisA: axisA, axisB: axisB, colCuts: colCuts, rowCuts: rowCuts,
		stepA: stepA, stepB: stepB}, nil
}
