package domain

import (
	"math"
	"testing"
	"testing/quick"

	"pscluster/internal/geom"
)

func TestFigure1InitialDomains(t *testing.T) {
	// Figure 1 of the paper: space [-10, 10], four calculators, equal
	// slices with edges -10, -5, 0, 5, 10.
	tab, err := NewEqual(geom.AxisX, -10, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-10, -5, 0, 5, 10}
	got := tab.Edges()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}
	// P1..P4 own the slices left to right.
	cases := []struct {
		x    float64
		want int
	}{{-7, 0}, {-5, 1}, {-2, 1}, {0, 2}, {3, 2}, {5, 3}, {9, 3}}
	for _, c := range cases {
		if got := tab.Owner(c.x); got != c.want {
			t.Errorf("Owner(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestNewEqualErrors(t *testing.T) {
	if _, err := NewEqual(geom.AxisX, 0, 10, 0); err == nil {
		t.Error("zero domains accepted")
	}
	if _, err := NewEqual(geom.AxisX, 5, 5, 2); err == nil {
		t.Error("empty space accepted")
	}
}

func TestFromEdges(t *testing.T) {
	tab, err := FromEdges(geom.AxisY, []float64{0, 1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != 3 {
		t.Errorf("N = %d", tab.N())
	}
	if _, err := FromEdges(geom.AxisY, []float64{0, 2, 1}); err == nil {
		t.Error("non-monotonic edges accepted")
	}
	if _, err := FromEdges(geom.AxisY, []float64{0}); err == nil {
		t.Error("single edge accepted")
	}
}

func TestOwnerClampsOutside(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 100, 5)
	if tab.Owner(-50) != 0 {
		t.Error("left exterior should belong to domain 0")
	}
	if tab.Owner(1e9) != 4 {
		t.Error("right exterior should belong to last domain")
	}
	if tab.Owner(100) != 4 { // exactly the top edge
		t.Error("top edge should belong to last domain")
	}
}

func TestOwnerSkipsZeroWidthDomains(t *testing.T) {
	// Domain 1 fully donated: edges 0,10,10,30.
	tab, err := FromEdges(geom.AxisX, []float64{0, 10, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Owner(10); got != 2 {
		t.Errorf("Owner(10) = %d, want 2 (zero-width domain 1 owns nothing)", got)
	}
	if got := tab.Owner(5); got != 0 {
		t.Errorf("Owner(5) = %d, want 0", got)
	}
}

func TestOwnerHalfOpenIntervals(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 10, 2)
	if got := tab.Owner(5); got != 1 {
		t.Errorf("Owner(5) = %d; boundary coordinate belongs to the right domain", got)
	}
	if got := tab.Owner(4.999999); got != 0 {
		t.Errorf("Owner(4.999999) = %d", got)
	}
}

// Property: every in-space coordinate is owned by a domain whose bounds
// contain it (or by the adjacent domain at a collapsed edge).
func TestOwnerConsistentWithBounds(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, -40, 40, 7)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		c := math.Mod(raw, 40)
		o := tab.Owner(c)
		lo, hi := tab.Bounds(o)
		return c >= lo && (c < hi || (o == tab.N()-1 && c <= hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBoundary(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 100, 4) // edges 0,25,50,75,100
	if err := tab.SetBoundary(2, 60); err != nil {
		t.Fatal(err)
	}
	lo, hi := tab.Bounds(1)
	if lo != 25 || hi != 60 {
		t.Errorf("domain 1 = [%g, %g)", lo, hi)
	}
	lo, hi = tab.Bounds(2)
	if lo != 60 || hi != 75 {
		t.Errorf("domain 2 = [%g, %g)", lo, hi)
	}
}

func TestSetBoundaryClamps(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 100, 4)
	if err := tab.SetBoundary(2, 1000); err != nil {
		t.Fatal(err)
	}
	if _, hi := tab.Bounds(1); hi != 75 { // clamped to edges[3]
		t.Errorf("boundary clamped to %g, want 75", hi)
	}
	if err := tab.SetBoundary(2, -1000); err != nil {
		t.Fatal(err)
	}
	if _, hi := tab.Bounds(1); hi != 25 { // clamped to edges[1]
		t.Errorf("boundary clamped to %g, want 25", hi)
	}
}

func TestSetBoundaryRangeErrors(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 100, 4)
	if err := tab.SetBoundary(0, 5); err == nil {
		t.Error("moving the outer edge accepted")
	}
	if err := tab.SetBoundary(4, 5); err == nil {
		t.Error("moving the outer edge accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 100, 4)
	c := tab.Clone()
	if err := c.SetBoundary(1, 30); err != nil {
		t.Fatal(err)
	}
	if _, hi := tab.Bounds(0); hi != 25 {
		t.Error("clone mutation leaked into original")
	}
}

func TestOwnerOfUsesAxis(t *testing.T) {
	tab, _ := NewEqual(geom.AxisY, 0, 10, 2)
	if got := tab.OwnerOf(geom.V(100, 2, -100)); got != 0 {
		t.Errorf("OwnerOf = %d, want 0 (y=2 in lower half)", got)
	}
	if got := tab.OwnerOf(geom.V(-100, 8, 100)); got != 1 {
		t.Errorf("OwnerOf = %d, want 1", got)
	}
}

func TestStringRendersEdges(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, -10, 10, 4)
	want := "[-10 | -5 | 0 | 5 | 10] along X"
	if got := tab.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestWidth(t *testing.T) {
	tab, _ := NewEqual(geom.AxisX, 0, 100, 4)
	for i := 0; i < 4; i++ {
		if tab.Width(i) != 25 {
			t.Errorf("Width(%d) = %g", i, tab.Width(i))
		}
	}
}
