// Package domain implements the spatial decomposition of the model
// (paper §3.1.4): the simulated space is divided, along one axis, into n
// slices — one per calculator process — and *every* process knows every
// boundary, so a particle that leaves its domain can be sent straight to
// its new owner instead of being broadcast. Each particle system has its
// own, independently-balanced table of domains.
package domain

import (
	"fmt"
	"sort"

	"pscluster/internal/geom"
)

// Table holds the n+1 boundaries of the n domains of one particle
// system. edges[i] and edges[i+1] delimit the domain of calculator i;
// domain i owns the half-open interval [edges[i], edges[i+1]), except
// that the outermost domains extend to ±infinity: a particle left of
// edges[0] belongs to calculator 0 and one at or right of edges[n] to
// calculator n-1. (Particles may fly out of any finite space; ownership
// must still be total.)
type Table struct {
	axis  geom.Axis
	edges []float64
}

// NewEqual returns the initial decomposition of Figure 1: n domains of
// equal size covering [lo, hi] along axis.
func NewEqual(axis geom.Axis, lo, hi float64, n int) (*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("domain: need at least one domain, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("domain: empty space [%g, %g]", lo, hi)
	}
	edges := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	// Guard against floating-point drift at the last edge.
	edges[n] = hi
	return &Table{axis: axis, edges: edges}, nil
}

// FromEdges builds a table directly from boundary values, which must be
// non-decreasing.
func FromEdges(axis geom.Axis, edges []float64) (*Table, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("domain: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] < edges[i-1] {
			return nil, fmt.Errorf("domain: edges not monotonic at %d: %g < %g",
				i, edges[i], edges[i-1])
		}
	}
	return &Table{axis: axis, edges: append([]float64(nil), edges...)}, nil
}

// N returns the number of domains.
func (t *Table) N() int { return len(t.edges) - 1 }

// Axis returns the split axis.
func (t *Table) Axis() geom.Axis { return t.axis }

// Edges returns a read-only view of the boundary values. Callers must
// not mutate or retain the slice across SetBoundary/Rebalance calls;
// the encode hot paths call this once per LB round per system, so a
// defensive copy here is pure garbage.
//
//pslint:hotpath
func (t *Table) Edges() []float64 { return t.edges }

// Bounds returns the [lo, hi) interval of domain i.
func (t *Table) Bounds(i int) (lo, hi float64) { return t.edges[i], t.edges[i+1] }

// Width returns the extent of domain i.
func (t *Table) Width(i int) float64 { return t.edges[i+1] - t.edges[i] }

// Owner returns the calculator index owning the given axis coordinate.
// Coordinates outside the space clamp to the outermost domains, and
// zero-width domains (fully donated by load balancing) never own
// anything.
func (t *Table) Owner(c float64) int { return ownerIn(t.edges, c) }

// ownerIn is Owner over a raw edge list; the grid decomposition reuses
// it once per axis.
func ownerIn(edges []float64, c float64) int {
	n := len(edges) - 1
	// First edge strictly greater than c; the owning domain is the one
	// before it.
	i := sort.SearchFloat64s(edges, c)
	// SearchFloat64s returns the first index with edges[i] >= c; for a
	// coordinate equal to an edge the particle belongs to the domain
	// starting there (half-open intervals), so step over ties.
	for i < len(edges) && edges[i] == c {
		i++
	}
	i-- // domain index
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	// A zero-width domain cannot own a coordinate: its interval is
	// empty. Ties at collapsed edges resolve to the nearest non-empty
	// domain on the side the coordinate falls.
	for i > 0 && edges[i] == edges[i+1] && c < edges[i] {
		i--
	}
	for i < n-1 && edges[i] == edges[i+1] {
		i++
	}
	return i
}

// OwnerOf returns the owner of a particle position.
func (t *Table) OwnerOf(p geom.Vec3) int { return t.Owner(p.Component(t.axis)) }

// SetBoundary moves the boundary between domains i-1 and i (that is,
// edges[i], for 1 <= i <= N-1) to x. The move must keep the edge list
// monotonic: x is clamped into [edges[i-1], edges[i+1]].
func (t *Table) SetBoundary(i int, x float64) error {
	if i < 1 || i > t.N()-1 {
		return fmt.Errorf("domain: boundary index %d out of range [1, %d]", i, t.N()-1)
	}
	if x < t.edges[i-1] {
		x = t.edges[i-1]
	}
	if x > t.edges[i+1] {
		x = t.edges[i+1]
	}
	t.edges[i] = x
	return nil
}

// Clone returns an independent copy of the table.
func (t *Table) Clone() *Table {
	return &Table{axis: t.axis, edges: append([]float64(nil), t.edges...)}
}

// String renders the table like the paper's Figure 1, e.g.
// "[-10 | -5 | 0 | 5 | 10] along X".
func (t *Table) String() string {
	s := "["
	for i, e := range t.edges {
		if i > 0 {
			s += " | "
		}
		s += fmt.Sprintf("%g", e)
	}
	return s + "] along " + t.axis.String()
}
