package domain

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"pscluster/internal/geom"
)

func mustSlab(t *testing.T, n int) *Table {
	t.Helper()
	tab, err := NewEqual(geom.AxisX, -10, 10, n)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func mustGrid(t *testing.T, n int) *Grid {
	t.Helper()
	g, err := NewGrid(geom.AxisX, geom.AxisY, -10, 10, -20, 20, n, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustVoronoi(t *testing.T, n int) *Voronoi {
	t.Helper()
	v, err := NewVoronoi(geom.Box(geom.V(-10, -20, -5), geom.V(10, 20, 5)),
		geom.AxisX, geom.AxisY, n, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSplitFactors(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 3: {1, 3}, 4: {2, 2}, 6: {2, 3},
		7: {1, 7}, 9: {3, 3}, 12: {3, 4}, 16: {4, 4},
	}
	for n, want := range cases {
		cols, rows := SplitFactors(n)
		if cols != want[0] || rows != want[1] {
			t.Errorf("SplitFactors(%d) = %d×%d, want %d×%d", n, cols, rows, want[0], want[1])
		}
		if cols*rows != n {
			t.Errorf("SplitFactors(%d) drops ranks: %d×%d", n, cols, rows)
		}
	}
}

// Every strategy's wire form must round-trip to a deeply equal table
// and re-encode to the identical bytes — the broadcast protocol relies
// on every process reconstructing the same geometry.
func TestWireRoundTrip(t *testing.T) {
	decomps := map[string]Decomposition{
		"slab":    mustSlab(t, 4),
		"grid":    mustGrid(t, 6),
		"voronoi": mustVoronoi(t, 5),
	}
	for name, d := range decomps {
		t.Run(name, func(t *testing.T) {
			wire := Encode(d)
			if WireSize(wire) != len(wire) {
				t.Fatalf("self-reported size %d != %d", WireSize(wire), len(wire))
			}
			got, err := Decode(wire)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(d, got) {
				t.Fatalf("round trip changed the table:\nwant %#v\ngot  %#v", d, got)
			}
			if re := Encode(got); !bytes.Equal(wire, re) {
				t.Fatal("re-encode is not byte-identical")
			}
			if got.Kind() != d.Kind() || got.N() != d.N() {
				t.Fatalf("kind/N drifted: %v/%d", got.Kind(), got.N())
			}
		})
	}
}

// A rebalanced table must round-trip too (moved cuts, drifted sites).
func TestWireRoundTripAfterRebalance(t *testing.T) {
	g := mustGrid(t, 4)
	v := mustVoronoi(t, 4)
	loads := []float64{10, 1, 1, 1}
	g.Rebalance(loads)
	v.Rebalance(loads)
	for name, d := range map[string]Decomposition{"grid": g, "voronoi": v} {
		got, err := Decode(Encode(d))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(d, got) {
			t.Fatalf("%s: rebalanced table did not round-trip", name)
		}
	}
}

// corrupt returns a copy of b with the byte at off xored.
func corrupt(b []byte, off int, x byte) []byte {
	c := append([]byte(nil), b...)
	c[off] ^= x
	return c
}

// putF64 overwrites the float64 at off in a copy of b.
func putF64(b []byte, off int, f float64) []byte {
	c := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(c[off:], math.Float64bits(f))
	return c
}

// TestDecodeCorruptPayloads drives Decode with systematically damaged
// blobs: every one must fail cleanly, never panic, never return a
// half-built table.
func TestDecodeCorruptPayloads(t *testing.T) {
	slab := Encode(mustSlab(t, 4))
	grid := Encode(mustGrid(t, 6))
	voro := Encode(mustVoronoi(t, 4))

	cases := map[string][]byte{
		"empty":            {},
		"short header":     slab[:3],
		"truncated":        slab[:len(slab)-1],
		"extended":         append(append([]byte(nil), slab...), 0),
		"size too small":   corrupt(slab, 0, 0xFF),
		"unknown kind":     corrupt(slab, 4, 0x7F),
		"kind zero":        corrupt(slab, 4, byte(KindSlab)),
		"slab bad axis":    corrupt(slab, 5, 0x40),
		"slab count zero":  corrupt(slab, 6, byte(len(mustSlab(t, 4).Edges()))),
		"slab huge count":  corrupt(slab, 8, 0xFF),
		"slab NaN edge":    putF64(slab, 10, math.NaN()),
		"slab +Inf edge":   putF64(slab, 10, math.Inf(1)),
		"slab unsorted":    putF64(slab, 10, 99), // first edge above the rest
		"grid equal axes":  corrupt(grid, 6, byte(geom.AxisX)^byte(geom.AxisY)),
		"grid bad axis":    corrupt(grid, 5, 0x40),
		"grid count zero":  corrupt(grid, 7, 3),
		"grid huge count":  corrupt(grid, 9, 0xFF),
		"grid NaN step":    putF64(grid, 15, math.NaN()),
		"grid neg step":    putF64(grid, 15, -1),
		"grid NaN cut":     putF64(grid, 31, math.NaN()),
		"grid unsorted":    putF64(grid, 31, 99),
		"voronoi no sites": corrupt(voro, 5, 4),
		"voronoi huge n":   corrupt(voro, 7, 0xFF),
		"voronoi NaN step": putF64(voro, 9, math.NaN()),
		"voronoi neg step": putF64(voro, 9, -2),
		"voronoi NaN min":  putF64(voro, 17, math.NaN()),
		"voronoi inverted": putF64(voro, 41, -1e9), // bounds max below min
		"voronoi NaN site": putF64(voro, 65, math.NaN()),
	}
	for name, blob := range cases {
		if d, err := Decode(blob); err == nil {
			t.Errorf("%s: decoded without error to %T", name, d)
		}
	}
	// Sanity: the pristine blobs still decode.
	for name, blob := range map[string][]byte{"slab": slab, "grid": grid, "voronoi": voro} {
		if _, err := Decode(blob); err != nil {
			t.Fatalf("pristine %s blob rejected: %v", name, err)
		}
	}
}

// Ownership must be total (any point in R³ maps to a valid rank) and
// agree with the band asymmetry: a point is never in its own cell's
// band toward a neighbor that owns it.
func TestOwnershipTotal(t *testing.T) {
	decomps := map[string]Decomposition{
		"slab":    mustSlab(t, 4),
		"grid":    mustGrid(t, 6),
		"voronoi": mustVoronoi(t, 5),
	}
	for name, d := range decomps {
		for x := -50.0; x <= 50; x += 7.3 {
			for y := -50.0; y <= 50; y += 11.1 {
				p := geom.V(x, y, x*0.1)
				o := d.OwnerOf(p)
				if o < 0 || o >= d.N() {
					t.Fatalf("%s: owner %d for %v outside [0,%d)", name, o, p, d.N())
				}
			}
		}
	}
}

func TestGridNeighbors(t *testing.T) {
	g := mustGrid(t, 6) // 2 cols × 3 rows; rank = row*2 + col
	cases := map[int][]int{
		0: {1, 2, 3},
		1: {0, 2, 3},
		2: {0, 1, 3, 4, 5},
		3: {0, 1, 2, 4, 5},
		4: {2, 3, 5},
		5: {2, 3, 4},
	}
	for rank, want := range cases {
		got := g.NeighborsOf(rank)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("neighbors of %d: %v, want %v", rank, got, want)
		}
	}
}

func TestSlabNeighbors(t *testing.T) {
	tab := mustSlab(t, 4)
	for rank, want := range map[int][]int{
		0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2},
	} {
		if got := tab.NeighborsOf(rank); !reflect.DeepEqual(got, want) {
			t.Errorf("neighbors of %d: %v, want %v", rank, got, want)
		}
	}
}

func TestVoronoiNeighborsAllPairs(t *testing.T) {
	v := mustVoronoi(t, 4)
	if got := v.NeighborsOf(2); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Errorf("neighbors of 2: %v", got)
	}
}

// The band regions must contain exactly the near-boundary points.
func TestNeighborBands(t *testing.T) {
	// Slab over [-10,10] with 4 ranks: rank 1 owns [-5,0).
	tab := mustSlab(t, 4)
	band := tab.NeighborBand(1, 2, 1.0)
	if !band.Contains(geom.V(-0.5, 0, 0)) {
		t.Error("slab: point near right edge not in band toward rank 2")
	}
	if band.Contains(geom.V(-3, 0, 0)) {
		t.Error("slab: interior point in band")
	}
	if tab.NeighborBand(1, 3, 1).Contains(geom.V(0, 0, 0)) {
		t.Error("slab: non-neighbor band not empty")
	}

	// Grid 2×3 over [-10,10]×[-20,20]: rank 0 = col 0, row 0
	// ([-10,0) × [-20,-20+40/3)). Its right-edge band toward rank 1.
	g := mustGrid(t, 6)
	right := g.NeighborBand(0, 1, 1.0)
	if !right.Contains(geom.V(-0.5, -10, 0)) {
		t.Error("grid: point near column cut not in band")
	}
	if right.Contains(geom.V(-5, -10, 0)) {
		t.Error("grid: interior point in column band")
	}
	// Diagonal band toward rank 3 (col 1, row 1): corner square.
	diag := g.NeighborBand(0, 3, 1.0)
	corner := geom.V(-0.5, -20+40.0/3-0.5, 0)
	if !diag.Contains(corner) {
		t.Error("grid: corner point not in diagonal band")
	}
	if diag.Contains(geom.V(-0.5, -19, 0)) {
		t.Error("grid: face point in diagonal band")
	}

	// Voronoi: a point close to the bisector is in the band.
	v := mustVoronoi(t, 2) // sites at y = ∓10 (1×2 lattice along Y)
	b := v.NeighborBand(0, 1, 1.0)
	if !b.Contains(geom.V(0, -0.3, 0)) {
		t.Error("voronoi: near-bisector point not in band")
	}
	if b.Contains(geom.V(0, -9, 0)) {
		t.Error("voronoi: deep interior point in band")
	}
	if v.NeighborBand(0, 0, 1).Contains(geom.V(0, 0, 0)) {
		t.Error("voronoi: self band not empty")
	}
}

// BoundaryBand must be exactly the union of the neighbor bands.
func TestBoundaryBandIsUnion(t *testing.T) {
	for name, d := range map[string]Decomposition{
		"slab": mustSlab(t, 4), "grid": mustGrid(t, 6), "voronoi": mustVoronoi(t, 4),
	} {
		rank := 1
		bb := d.BoundaryBand(rank, 1.0)
		for x := -12.0; x <= 12; x += 1.7 {
			for y := -22.0; y <= 22; y += 2.3 {
				p := geom.V(x, y, 0)
				inAny := false
				for _, n := range d.NeighborsOf(rank) {
					if d.NeighborBand(rank, n, 1.0).Contains(p) {
						inAny = true
						break
					}
				}
				if bb.Contains(p) != inAny {
					t.Fatalf("%s: boundary band disagrees with union at %v", name, p)
				}
			}
		}
	}
}

// Rebalance must move geometry toward load, deterministically and
// bounded.
func TestGridRebalanceShiftsCuts(t *testing.T) {
	g := mustGrid(t, 4) // 2×2, col cut at 0, row cut at 0
	before0, before1 := g.colCuts[1], g.rowCuts[1]
	if !g.Rebalance([]float64{10, 0, 0, 0}) { // all load in (col 0, row 0)
		t.Fatal("rebalance reported no movement")
	}
	// The cuts move toward the heavy side, shrinking its cell.
	if g.colCuts[1] >= before0 {
		t.Errorf("column cut did not move toward the heavy column: %g", g.colCuts[1])
	}
	if g.rowCuts[1] >= before1 {
		t.Errorf("row cut did not move toward the heavy row: %g", g.rowCuts[1])
	}
	if d := before0 - g.colCuts[1]; d > g.stepA+1e-12 {
		t.Errorf("column cut moved %g, beyond step bound %g", d, g.stepA)
	}
	if g.Rebalance([]float64{1, 1, 1, 1}) && g.colCuts[1] != g.colCuts[1] {
		t.Error("balanced load moved a cut")
	}
	if g.Rebalance(nil) {
		t.Error("wrong-length loads moved the grid")
	}
}

func TestVoronoiRebalanceDriftsSites(t *testing.T) {
	v := mustVoronoi(t, 2)
	s0, s1 := v.sites[0], v.sites[1]
	// All load at site 0: the idle site 1 drifts toward it.
	if !v.Rebalance([]float64{10, 0}) {
		t.Fatal("rebalance reported no movement")
	}
	if v.sites[0] != s0 {
		t.Error("loaded site moved")
	}
	moved := v.sites[1].Sub(s1).Len()
	if moved <= 0 || moved > v.maxStep+1e-12 {
		t.Errorf("idle site moved %g, want within (0, %g]", moved, v.maxStep)
	}
	if v.sites[1].Dist(s0) >= s1.Dist(s0) {
		t.Error("idle site did not move toward the load")
	}
	if v.Rebalance([]float64{1}) {
		t.Error("wrong-length loads moved the sites")
	}
}

func TestSlabRebalanceShiftsEdges(t *testing.T) {
	tab := mustSlab(t, 4)
	before := append([]float64(nil), tab.Edges()...)
	if !tab.Rebalance([]float64{10, 0, 0, 0}) {
		t.Fatal("rebalance reported no movement")
	}
	if tab.Edges()[1] >= before[1] {
		t.Error("edge 1 did not move toward the heavy slab")
	}
	if tab.Edges()[0] != before[0] || tab.Edges()[4] != before[4] {
		t.Error("outer edges moved")
	}
}

// Edges must be a read-only view, not a copy (the hot path reads it
// every frame).
func TestEdgesIsView(t *testing.T) {
	tab := mustSlab(t, 4)
	e := tab.Edges()
	if &e[0] != &tab.edges[0] {
		t.Error("Edges() copies the slice")
	}
}

// FuzzDecodeDomainWire drives the wire decoder with arbitrary bytes:
// never panic, and any accepted blob must re-encode byte-identically
// (a decode/encode fixed point — the broadcast invariant).
func FuzzDecodeDomainWire(f *testing.F) {
	slab, _ := NewEqual(geom.AxisY, -1, 1, 3)
	grid, _ := NewGrid(geom.AxisZ, geom.AxisX, 0, 4, -2, 2, 4, 0.25)
	voro, _ := NewVoronoi(geom.Box(geom.V(0, 0, 0), geom.V(8, 8, 8)), geom.AxisX, geom.AxisY, 3, 0.5)
	f.Add(Encode(slab))
	f.Add(Encode(grid))
	f.Add(Encode(voro))
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(d)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted blob is not a codec fixed point:\nin  %x\nout %x", data, re)
		}
		if d.N() < 1 {
			t.Fatalf("decoded table has %d ranks", d.N())
		}
	})
}
