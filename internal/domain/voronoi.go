package domain

import (
	"encoding/binary"
	"fmt"
	"math"

	"pscluster/internal/geom"
	"pscluster/internal/loadbalance"
)

// Voronoi assigns each position to the nearest of n sites (ties to the
// lowest rank), after the SPH-with-Voronoi-subdomains decomposition of
// arXiv:1805.05128: instead of shifting fixed cut planes, the sites
// themselves drift toward the load centroid during Rebalance, so the
// cells chase particle clusters wherever they condense. Site motion is
// bounded per call (maxStep) and clamped into bounds, keeping replays
// deterministic.
type Voronoi struct {
	sites   []geom.Vec3
	bounds  geom.AABB
	maxStep float64
}

// NewVoronoi seeds n sites on a SplitFactors lattice of cell centers
// in the axisA × axisB plane of bounds (third component at the bounds
// center), matching the initial layout of the equivalent grid. maxStep
// bounds per-call site movement.
func NewVoronoi(bounds geom.AABB, axisA, axisB geom.Axis, n int, maxStep float64) (*Voronoi, error) {
	if axisA == axisB {
		return nil, fmt.Errorf("domain: voronoi axes must differ, got %s twice", axisA)
	}
	if n < 1 {
		return nil, fmt.Errorf("domain: need at least one site, got %d", n)
	}
	if !(bounds.Extent(axisA) > 0) || !(bounds.Extent(axisB) > 0) {
		return nil, fmt.Errorf("domain: voronoi bounds empty along %s or %s", axisA, axisB)
	}
	if !(maxStep > 0) {
		return nil, fmt.Errorf("domain: voronoi max step %g must be positive", maxStep)
	}
	cols, rows := SplitFactors(n)
	loA := bounds.Min.Component(axisA)
	loB := bounds.Min.Component(axisB)
	wA := bounds.Extent(axisA) / float64(cols)
	wB := bounds.Extent(axisB) / float64(rows)
	sites := make([]geom.Vec3, n)
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			s := bounds.Center()
			s = s.WithComponent(axisA, loA+wA*(float64(col)+0.5))
			s = s.WithComponent(axisB, loB+wB*(float64(row)+0.5))
			sites[row*cols+col] = s
		}
	}
	return &Voronoi{sites: sites, bounds: bounds, maxStep: maxStep}, nil
}

// N returns the number of sites.
func (v *Voronoi) N() int { return len(v.sites) }

// Kind identifies the Voronoi strategy.
func (v *Voronoi) Kind() Kind { return KindVoronoi }

// Sites returns a read-only view of the site positions. Callers must
// not mutate or retain the slice across Rebalance calls.
func (v *Voronoi) Sites() []geom.Vec3 { return v.sites }

// OwnerOf returns the rank of the nearest site (squared distance,
// strict comparison: ties go to the lowest rank). Called once per
// particle per exchange in the non-slab migration path.
//
//pslint:hotpath
func (v *Voronoi) OwnerOf(p geom.Vec3) int {
	best := 0
	bestD := p.Sub(v.sites[0]).Len2()
	for i := 1; i < len(v.sites); i++ {
		if d := p.Sub(v.sites[i]).Len2(); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// NeighborsOf returns every other rank, ascending. Voronoi cell
// adjacency changes as sites drift, and with single-digit rank counts
// the conservative all-pairs graph costs a handful of empty band
// messages — far cheaper than maintaining an incremental Delaunay
// triangulation and re-proving its determinism.
func (v *Voronoi) NeighborsOf(rank int) []int {
	ns := make([]int, 0, len(v.sites)-1)
	for i := range v.sites {
		if i != rank {
			ns = append(ns, i)
		}
	}
	return ns
}

// NeighborBand returns the part of rank's cell within radius of the
// rank/neighbor bisector plane.
func (v *Voronoi) NeighborBand(rank, neighbor int, radius float64) Region {
	if neighbor < 0 || neighbor >= len(v.sites) || neighbor == rank {
		return noSpace{}
	}
	return bisectorBand{self: v.sites[rank], other: v.sites[neighbor], radius: radius}
}

// BoundaryBand returns the union of rank's bisector bands.
func (v *Voronoi) BoundaryBand(rank int, radius float64) Region {
	ns := v.NeighborsOf(rank)
	u := make(anyRegion, len(ns))
	for i, n := range ns {
		u[i] = v.NeighborBand(rank, n, radius)
	}
	return u
}

// Rebalance drifts under-loaded sites toward the load centroid (see
// loadbalance.DriftSites).
func (v *Voronoi) Rebalance(loads []float64) bool {
	return loadbalance.DriftSites(v.sites, loads, v.maxStep, v.bounds)
}

// AppendWire appends the Voronoi wire form: header, site count, max
// step, bounds, sites.
func (v *Voronoi) AppendWire(dst []byte) []byte {
	dst = appendWireHeader(dst, KindVoronoi, 4+8+48+24*len(v.sites))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.sites)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.maxStep))
	dst = appendVec(dst, v.bounds.Min)
	dst = appendVec(dst, v.bounds.Max)
	for _, s := range v.sites {
		dst = appendVec(dst, s)
	}
	return dst
}

func appendVec(dst []byte, p geom.Vec3) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Z))
}

func readVec(p []byte) (geom.Vec3, bool) {
	v := geom.Vec3{
		X: math.Float64frombits(binary.LittleEndian.Uint64(p)),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		Z: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}
	return v, finite(v.X) && finite(v.Y) && finite(v.Z)
}

func decodeVoronoi(p []byte) (Decomposition, error) {
	if len(p) < 60 {
		return nil, fmt.Errorf("domain: voronoi payload too short: %d bytes", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n < 1 || n > maxWireRanks {
		return nil, fmt.Errorf("domain: voronoi site count %d out of range", n)
	}
	if want := 60 + 24*n; len(p) != want {
		return nil, fmt.Errorf("domain: voronoi payload %d bytes, want %d", len(p), want)
	}
	maxStep := math.Float64frombits(binary.LittleEndian.Uint64(p[4:]))
	if !finite(maxStep) || maxStep < 0 {
		return nil, fmt.Errorf("domain: voronoi max step %g invalid", maxStep)
	}
	min, ok := readVec(p[12:])
	if !ok {
		return nil, fmt.Errorf("domain: voronoi bounds min not finite")
	}
	max, ok := readVec(p[36:])
	if !ok {
		return nil, fmt.Errorf("domain: voronoi bounds max not finite")
	}
	if max.X < min.X || max.Y < min.Y || max.Z < min.Z {
		return nil, fmt.Errorf("domain: voronoi bounds inverted")
	}
	sites := make([]geom.Vec3, n)
	for i := range sites {
		s, ok := readVec(p[60+24*i:])
		if !ok {
			return nil, fmt.Errorf("domain: voronoi site %d not finite", i)
		}
		sites[i] = s
	}
	return &Voronoi{sites: sites, bounds: geom.AABB{Min: min, Max: max}, maxStep: maxStep}, nil
}
