package domain

import (
	"encoding/binary"
	"fmt"
	"math"

	"pscluster/internal/geom"
	"pscluster/internal/loadbalance"
)

// This file lifts the 1-D slab assumption of the paper (§3.1.4) into a
// strategy interface (ROADMAP item 3). The slab Table stays the
// paper-faithful default; the 2-D grid (grid.go, after the dynamic MD
// decomposition of arXiv:cs/0405086) and the Voronoi-site mode
// (voronoi.go, after the SPH subdomains of arXiv:1805.05128) are
// alternatives for workloads where one-axis slicing degenerates.

// Kind identifies a decomposition strategy on the wire.
type Kind uint8

const (
	// KindSlab is the paper's 1-D axis-slab Table.
	KindSlab Kind = 1
	// KindGrid is the 2-D grid with independently moving row/column cuts.
	KindGrid Kind = 2
	// KindVoronoi is the nearest-site decomposition with drifting sites.
	KindVoronoi Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindSlab:
		return "slab"
	case KindGrid:
		return "grid"
	case KindVoronoi:
		return "voronoi"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Region is a predicate over space: the shape of a ghost band. The
// engine only ever asks "is this particle inside", so regions stay
// abstract instead of committing to intervals (slab bands are
// half-spaces, grid bands are box shells, Voronoi bands are bisector
// slabs).
type Region interface {
	Contains(p geom.Vec3) bool
}

// Decomposition is the space-partitioning strategy of one particle
// system: a total assignment of space to nCalc calculators, the
// neighbor graph used for ghost exchange, and the rebalancing rule
// that moves the partition geometry toward measured load.
//
// Implementations must be deterministic: NeighborsOf returns ranks in
// ascending order, Rebalance moves by a bounded step per call, and
// AppendWire round-trips bit-exactly through Decode so every process
// reconstructs the identical table.
type Decomposition interface {
	// N returns the number of calculators the space is divided among.
	N() int
	// Kind identifies the strategy for wire dispatch.
	Kind() Kind
	// OwnerOf returns the calculator index owning a position. Ownership
	// is total: positions outside any finite extent still map to a rank.
	OwnerOf(p geom.Vec3) int
	// NeighborsOf returns the ranks adjacent to rank, ascending, self
	// excluded. Ghost bands are exchanged exactly with these.
	NeighborsOf(rank int) []int
	// NeighborBand returns the portion of rank's domain within radius of
	// its boundary toward neighbor — the ghost band shipped to neighbor.
	NeighborBand(rank, neighbor int, radius float64) Region
	// BoundaryBand returns the union of rank's neighbor bands: everything
	// within radius of any inter-domain boundary of rank.
	BoundaryBand(rank int, radius float64) Region
	// Rebalance moves the partition geometry toward the per-rank loads
	// (one non-negative weight per calculator) by a bounded step, and
	// reports whether anything moved.
	Rebalance(loads []float64) bool
	// AppendWire appends the deterministic wire encoding (see Decode)
	// and returns the extended slice.
	AppendWire(dst []byte) []byte
}

// --- regions ---

type allSpace struct{}

func (allSpace) Contains(geom.Vec3) bool { return true }

type noSpace struct{}

func (noSpace) Contains(geom.Vec3) bool { return false }

// axisCut is the half-space on one side of an axis-aligned plane:
// below selects c < x, otherwise c >= x. The asymmetry mirrors the
// half-open domain intervals, so a band never double-counts particles
// sitting exactly on a cut.
type axisCut struct {
	axis  geom.Axis
	x     float64
	below bool
}

func (a axisCut) Contains(p geom.Vec3) bool {
	c := p.Component(a.axis)
	if a.below {
		return c < a.x
	}
	return c >= a.x
}

// cutBand is the conjunction of half-spaces (an axis-aligned shell
// face for the grid decomposition).
type cutBand []axisCut

func (b cutBand) Contains(p geom.Vec3) bool {
	for _, c := range b {
		if !c.Contains(p) {
			return false
		}
	}
	return true
}

// anyRegion is the union of regions. An empty union contains nothing.
type anyRegion []Region

func (u anyRegion) Contains(p geom.Vec3) bool {
	for _, r := range u {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// bisectorBand selects points of self's Voronoi cell within radius of
// the self/other bisector plane: the signed distance from p to the
// bisector, positive toward other, is (|p-other|² - |p-self|²)/(2·|other-self|);
// the band is where that distance is below radius. Membership in
// self's cell is the caller's concern (the engine filters by owner
// first), so the band itself is just the slab against the bisector.
type bisectorBand struct {
	self, other geom.Vec3
	radius      float64
}

func (b bisectorBand) Contains(p geom.Vec3) bool {
	l := b.other.Sub(b.self).Len()
	if l == 0 {
		return true
	}
	d := (p.Dist(b.other)*p.Dist(b.other) - p.Dist(b.self)*p.Dist(b.self)) / (2 * l)
	return d < b.radius
}

// --- slab strategy methods on Table ---

// slabRebalanceFrac bounds a slab Rebalance step to this fraction of
// the total extent per call, matching the bounded-step discipline of
// the grid and Voronoi strategies. (The engine's paper-faithful DLB
// path never calls this — it derives boundaries from donated particles
// per §3.2.5 — but the strategy must still be self-contained.)
const slabRebalanceFrac = 0.05

// Kind identifies the slab strategy.
func (t *Table) Kind() Kind { return KindSlab }

// NeighborsOf returns the adjacent slab ranks: rank±1 where they exist.
func (t *Table) NeighborsOf(rank int) []int {
	ns := make([]int, 0, 2)
	if rank > 0 {
		ns = append(ns, rank-1)
	}
	if rank < t.N()-1 {
		ns = append(ns, rank+1)
	}
	return ns
}

// NeighborBand returns the half-space of rank's slab within radius of
// the shared edge with neighbor.
func (t *Table) NeighborBand(rank, neighbor int, radius float64) Region {
	switch neighbor {
	case rank - 1:
		return axisCut{axis: t.axis, x: t.edges[rank] + radius, below: true}
	case rank + 1:
		return axisCut{axis: t.axis, x: t.edges[rank+1] - radius, below: false}
	default:
		return noSpace{}
	}
}

// BoundaryBand returns the union of rank's two edge bands.
func (t *Table) BoundaryBand(rank int, radius float64) Region {
	ns := t.NeighborsOf(rank)
	u := make(anyRegion, len(ns))
	for i, n := range ns {
		u[i] = t.NeighborBand(rank, n, radius)
	}
	return u
}

// Rebalance shifts the interior edges toward the heavier side by at
// most slabRebalanceFrac of the total extent.
func (t *Table) Rebalance(loads []float64) bool {
	step := (t.edges[t.N()] - t.edges[0]) * slabRebalanceFrac
	return loadbalance.ShiftCuts(t.edges, loads, step)
}

// AppendWire appends the slab wire form: header, axis, edge count,
// edges.
func (t *Table) AppendWire(dst []byte) []byte {
	dst = appendWireHeader(dst, KindSlab, 1+4+8*len(t.edges))
	dst = append(dst, byte(t.axis))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.edges)))
	for _, e := range t.edges {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e))
	}
	return dst
}

// --- wire codec ---

// Wire layout: [u32 total size incl. this header][u8 kind][payload].
// All integers little-endian, floats as IEEE-754 bits, matching the
// proto.go codecs. The leading size makes domain blobs self-sizing so
// they can ride inside counted sequences (multi-decomp payloads).

const wireHeaderSize = 5

// maxWireRanks caps decoded rank counts; real clusters are single
// digits, so anything bigger is a corrupt or hostile payload.
const maxWireRanks = 1 << 16

func appendWireHeader(dst []byte, k Kind, payload int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(wireHeaderSize+payload))
	return append(dst, byte(k))
}

// Encode returns the wire encoding of a decomposition.
func Encode(d Decomposition) []byte { return d.AppendWire(nil) }

// WireSize reads the total size of the wire blob starting at b. It is
// the size fn for decodeCountedSeq-style framing; callers must ensure
// len(b) >= 4.
func WireSize(b []byte) int { return int(binary.LittleEndian.Uint32(b)) }

// Decode parses a wire blob produced by AppendWire/Encode, validating
// every field (sizes, finiteness, monotonicity) so a corrupt or
// hostile payload yields an error instead of a broken table.
func Decode(b []byte) (Decomposition, error) {
	if len(b) < wireHeaderSize {
		return nil, fmt.Errorf("domain: wire blob too short: %d bytes", len(b))
	}
	if sz := WireSize(b); sz != len(b) {
		return nil, fmt.Errorf("domain: wire size %d != blob size %d", sz, len(b))
	}
	kind := Kind(b[wireHeaderSize-1])
	p := b[wireHeaderSize:]
	switch kind {
	case KindSlab:
		return decodeSlab(p)
	case KindGrid:
		return decodeGrid(p)
	case KindVoronoi:
		return decodeVoronoi(p)
	default:
		return nil, fmt.Errorf("domain: unknown decomposition kind %d", uint8(kind))
	}
}

func decodeSlab(p []byte) (Decomposition, error) {
	if len(p) < 5 {
		return nil, fmt.Errorf("domain: slab payload too short: %d bytes", len(p))
	}
	axis := geom.Axis(p[0])
	if axis > geom.AxisZ {
		return nil, fmt.Errorf("domain: slab axis %d out of range", p[0])
	}
	n := int(binary.LittleEndian.Uint32(p[1:]))
	if n < 2 || n > maxWireRanks {
		return nil, fmt.Errorf("domain: slab edge count %d out of range", n)
	}
	if want := 5 + 8*n; len(p) != want {
		return nil, fmt.Errorf("domain: slab payload %d bytes, want %d", len(p), want)
	}
	edges := make([]float64, n)
	for i := range edges {
		edges[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[5+8*i:]))
		if !finite(edges[i]) {
			return nil, fmt.Errorf("domain: slab edge %d not finite", i)
		}
	}
	t, err := FromEdges(axis, edges)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
