package render

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pscluster/internal/particle"
)

// Plane is the tiled host-parallel renderer (ROADMAP item 4, grounded
// in the tile-owned compositing of arXiv:1401.0608): a fixed set of
// splat workers that share every ingested batch but own disjoint pixel
// rows of the framebuffer, plus one finisher goroutine that runs
// whole-frame work (checksum, tone-map, file write) off the caller's
// goroutine.
//
// Determinism: worker w owns exactly the rows y with y % width == w,
// and every worker receives every batch over its own FIFO queue in the
// ingest call order. A pixel is therefore touched by exactly one
// goroutine, in exactly the order a serial splatter would touch it, so
// the accumulated floats — and with them Checksum() and the PPM bytes —
// are bit-identical at any width. Like the compute plane's workerPool,
// the Plane moves host work around but never changes what is computed.
//
// The Plane is free-threaded in the small: one goroutine ingests and
// barriers, the workers splat, the finisher writes. It is not safe for
// concurrent ingest from multiple goroutines (the per-queue FIFO order
// is the determinism contract).
type Plane struct {
	width   int
	queues  []chan planeOp
	wg      sync.WaitGroup
	finish  chan finishJob
	closed  bool
	leases  sync.Pool // *planeBatch
	barrier sync.WaitGroup
}

// planeOp is one unit of worker work: splat a shared batch into the
// owned rows of fb, or (when bar is non-nil) report a barrier.
type planeOp struct {
	fb  *Framebuffer
	cam Camera
	b   *planeBatch
	bar *sync.WaitGroup
}

// planeBatch is a leased decode target shared by every worker; the last
// worker to finish returns it to the lease pool.
type planeBatch struct {
	cols particle.Batch
	refs atomic.Int32
}

// finishJob is one whole-frame job for the finisher goroutine.
type finishJob struct {
	fb   *Framebuffer
	fn   func(*Framebuffer) error
	done chan<- error
}

// planeQueueDepth bounds each worker's pending-batch FIFO. Ingest
// blocks when a queue is full — pure backpressure, since workers always
// drain; the bound keeps a fast producer from buffering a whole frame.
const planeQueueDepth = 64

// NewPlane starts a plane of the given width (<= 0 means GOMAXPROCS;
// callers gate the serial width-1 case themselves). Close releases the
// goroutines.
func NewPlane(width int) *Plane {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Plane{
		width:  width,
		queues: make([]chan planeOp, width),
		finish: make(chan finishJob, 1),
	}
	for w := range p.queues {
		p.queues[w] = make(chan planeOp, planeQueueDepth)
		p.wg.Add(1)
		go p.worker(w)
	}
	p.wg.Add(1)
	go p.finisher()
	return p
}

// Width returns the number of splat workers.
func (p *Plane) Width() int { return p.width }

// Ingest leases a batch, fills it via decode(batch, blob) on the
// calling goroutine, and hands it to every worker. Each worker splats
// only its owned rows; the batch returns to the lease pool when the
// last worker finishes. Decode errors surface before anything is
// enqueued.
func (p *Plane) Ingest(fb *Framebuffer, cam Camera, blob []byte, decode func(*particle.Batch, []byte) error) error {
	pb, _ := p.leases.Get().(*planeBatch)
	if pb == nil {
		pb = new(planeBatch)
	}
	if err := decode(&pb.cols, blob); err != nil {
		p.leases.Put(pb)
		return err
	}
	pb.refs.Store(int32(p.width))
	for _, q := range p.queues {
		q <- planeOp{fb: fb, cam: cam, b: pb}
	}
	return nil
}

// Barrier returns once every batch ingested so far has been fully
// splatted. The framebuffer is complete (and safe to read from the
// calling goroutine) when Barrier returns.
func (p *Plane) Barrier() {
	p.barrier.Add(p.width)
	for _, q := range p.queues {
		q <- planeOp{bar: &p.barrier}
	}
	p.barrier.Wait()
}

// FinishAsync hands fb to the finisher goroutine and returns a channel
// carrying fn's error. Callers Barrier first, so fb is complete when fn
// runs. The channel is buffered: the result can be read long after (or
// never, on abort) without wedging the finisher.
func (p *Plane) FinishAsync(fb *Framebuffer, fn func(*Framebuffer) error) <-chan error {
	done := make(chan error, 1)
	p.finish <- finishJob{fb: fb, fn: fn, done: done}
	return done
}

// Close drains the queues and stops every goroutine. Idempotent; safe
// after partial runs — pending finish jobs still run (their buffered
// channels hold the results).
func (p *Plane) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	close(p.finish)
	p.wg.Wait()
}

func (p *Plane) worker(w int) {
	defer p.wg.Done()
	for op := range p.queues[w] {
		if op.bar != nil {
			op.bar.Done()
			continue
		}
		op.fb.SplatColumnsOwned(op.cam, &op.b.cols, w, p.width)
		if op.b.refs.Add(-1) == 0 {
			p.leases.Put(op.b)
		}
	}
}

func (p *Plane) finisher() {
	defer p.wg.Done()
	for job := range p.finish {
		job.done <- job.fn(job.fb)
	}
}
