package render

import (
	"bytes"
	"strings"
	"testing"

	"pscluster/internal/geom"
	"pscluster/internal/particle"
)

func testCam() OrthoCamera {
	return OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 64, H: 64}
}

func TestOrthoProjectCenterAndCorners(t *testing.T) {
	c := testCam()
	x, y, _, ok := c.Project(geom.V(0, 0, 0))
	if !ok || x != 32 || y != 32 {
		t.Errorf("center -> (%v, %v, %v)", x, y, ok)
	}
	x, y, _, _ = c.Project(geom.V(-10, 10, 0))
	if x != 0 || y != 0 {
		t.Errorf("top-left -> (%v, %v)", x, y)
	}
	x, y, _, _ = c.Project(geom.V(10, -10, 0))
	if x != 64 || y != 64 {
		t.Errorf("bottom-right -> (%v, %v)", x, y)
	}
}

func TestPerspectiveProject(t *testing.T) {
	c := PerspectiveCamera{
		Eye: geom.V(0, 0, 10), Look: geom.V(0, 0, 0), Up: geom.V(0, 1, 0),
		FOV: 1.0, W: 100, H: 100,
	}
	x, y, _, ok := c.Project(geom.V(0, 0, 0))
	if !ok || x != 50 || y != 50 {
		t.Errorf("center -> (%v, %v, %v)", x, y, ok)
	}
	// A point above the look axis projects above the image center.
	_, y2, _, ok := c.Project(geom.V(0, 2, 0))
	if !ok || y2 >= 50 {
		t.Errorf("raised point projects at y=%v, want < 50", y2)
	}
	// Behind the camera: rejected.
	if _, _, _, ok := c.Project(geom.V(0, 0, 20)); ok {
		t.Error("point behind camera accepted")
	}
	// Nearer points get larger scale (bigger splats).
	_, _, sNear, _ := c.Project(geom.V(0, 0, 5))
	_, _, sFar, _ := c.Project(geom.V(0, 0, -5))
	if sNear <= sFar {
		t.Errorf("scale near %v <= far %v", sNear, sFar)
	}
}

func TestSplatDepositsEnergy(t *testing.T) {
	f := NewFramebuffer(64, 64)
	p := particle.Particle{Pos: geom.V(0, 0, 0), Color: geom.V(1, 0.5, 0.25), Alpha: 1, Size: 1}
	f.Splat(testCam(), &p)
	c := f.At(32, 32)
	if c.X <= 0 || c.Y <= 0 || c.Z <= 0 {
		t.Errorf("center pixel = %v, want positive energy", c)
	}
	if c.Y/c.X < 0.4 || c.Y/c.X > 0.6 {
		t.Errorf("color ratio off: %v", c)
	}
	// Distant pixel untouched.
	if got := f.At(0, 0); got != (geom.Vec3{}) {
		t.Errorf("far pixel = %v", got)
	}
}

func TestSplatOffscreenIsSafe(t *testing.T) {
	f := NewFramebuffer(16, 16)
	for _, pos := range []geom.Vec3{geom.V(-1000, 0, 0), geom.V(9.99, 9.99, 0)} {
		p := particle.Particle{Pos: pos, Color: geom.V(1, 1, 1), Alpha: 1, Size: 5}
		f.Splat(testCam(), &p) // must not panic at image edges
	}
}

func TestZeroAlphaInvisible(t *testing.T) {
	f := NewFramebuffer(32, 32)
	p := particle.Particle{Pos: geom.V(0, 0, 0), Color: geom.V(1, 1, 1), Alpha: 0, Size: 2}
	f.Splat(testCam(), &p)
	if f.Checksum() != NewFramebuffer(32, 32).Checksum() {
		t.Error("zero-alpha particle left a mark")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	ps := []particle.Particle{
		{Pos: geom.V(1, 2, 0), Color: geom.V(1, 0, 0), Alpha: 0.7, Size: 1},
		{Pos: geom.V(-3, 4, 0), Color: geom.V(0, 1, 0), Alpha: 0.5, Size: 2},
		{Pos: geom.V(5, -6, 0), Color: geom.V(0, 0, 1), Alpha: 0.9, Size: 1.5},
	}
	f1 := NewFramebuffer(64, 64)
	f1.SplatBatch(testCam(), ps)
	f2 := NewFramebuffer(64, 64)
	for i := len(ps) - 1; i >= 0; i-- {
		f2.Splat(testCam(), &ps[i])
	}
	if f1.Checksum() != f2.Checksum() {
		t.Error("checksum depends on splat order")
	}
}

func TestChecksumDetectsDifference(t *testing.T) {
	f1 := NewFramebuffer(32, 32)
	f2 := NewFramebuffer(32, 32)
	p := particle.Particle{Pos: geom.V(0, 0, 0), Color: geom.V(1, 1, 1), Alpha: 1, Size: 1}
	f1.Splat(testCam(), &p)
	if f1.Checksum() == f2.Checksum() {
		t.Error("checksum blind to content")
	}
}

func TestClear(t *testing.T) {
	f := NewFramebuffer(32, 32)
	empty := f.Checksum()
	p := particle.Particle{Pos: geom.V(0, 0, 0), Color: geom.V(1, 1, 1), Alpha: 1, Size: 1}
	f.Splat(testCam(), &p)
	f.Clear()
	if f.Checksum() != empty {
		t.Error("Clear did not reset the frame")
	}
}

func TestWritePPM(t *testing.T) {
	f := NewFramebuffer(8, 4)
	p := particle.Particle{Pos: geom.V(0, 0, 0), Color: geom.V(4, 4, 4), Alpha: 1, Size: 3}
	f.Splat(OrthoCamera{Region: geom.Box(geom.V(-1, -1, -1), geom.V(1, 1, 1)), W: 8, H: 4}, &p)
	var buf bytes.Buffer
	if err := f.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P6\n8 4\n255\n") {
		t.Errorf("PPM header = %q", s[:min(20, len(s))])
	}
	if buf.Len() != len("P6\n8 4\n255\n")+8*4*3 {
		t.Errorf("PPM size = %d", buf.Len())
	}
}

func TestNewFramebufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid size accepted")
		}
	}()
	NewFramebuffer(0, 10)
}
