// Package render is the image generator's renderer: a software point
// splatter that turns particle batches into frames. The paper's image
// generator "collects the particles sent by the calculators and renders
// each one of the frames of the animation" (§3.1.1); this package is
// that renderer, producing PPM images and deterministic frame checksums
// the test-suite uses to compare sequential and parallel runs.
package render

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"sync"

	"pscluster/internal/bufpool"
	"pscluster/internal/geom"
	"pscluster/internal/particle"
)

// Camera projects world-space points to continuous pixel coordinates.
type Camera interface {
	// Project returns the pixel position, the world-to-pixel size scale
	// at the point, and whether the point is in front of the camera.
	Project(p geom.Vec3) (x, y, scale float64, ok bool)
}

// OrthoCamera views the box region straight down the Z axis: world X
// maps to image X, world Y to image Y (flipped so +Y is up).
type OrthoCamera struct {
	Region geom.AABB
	W, H   int
}

// Project implements Camera.
func (c OrthoCamera) Project(p geom.Vec3) (float64, float64, float64, bool) {
	size := c.Region.Size()
	if size.X <= 0 || size.Y <= 0 {
		return 0, 0, 0, false
	}
	x := (p.X - c.Region.Min.X) / size.X * float64(c.W)
	y := (1 - (p.Y-c.Region.Min.Y)/size.Y) * float64(c.H)
	return x, y, float64(c.W) / size.X, true
}

// PerspectiveCamera is a simple pinhole camera looking from Eye toward
// Look with the +Y-ish Up direction and a vertical field of view in
// radians.
type PerspectiveCamera struct {
	Eye, Look, Up geom.Vec3
	FOV           float64
	W, H          int
}

// Project implements Camera.
func (c PerspectiveCamera) Project(p geom.Vec3) (float64, float64, float64, bool) {
	fwd := c.Look.Sub(c.Eye).Norm()
	right := fwd.Cross(c.Up).Norm()
	up := right.Cross(fwd)
	rel := p.Sub(c.Eye)
	z := rel.Dot(fwd)
	if z <= 1e-6 {
		return 0, 0, 0, false
	}
	f := float64(c.H) / (2 * math.Tan(c.FOV/2))
	x := rel.Dot(right) / z * f
	y := rel.Dot(up) / z * f
	return float64(c.W)/2 + x, float64(c.H)/2 - y, f / z, true
}

// Framebuffer accumulates additive splats in linear RGB.
type Framebuffer struct {
	W, H int
	pix  []geom.Vec3
}

// NewFramebuffer returns a cleared framebuffer.
func NewFramebuffer(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid framebuffer %dx%d", w, h))
	}
	return &Framebuffer{W: w, H: h, pix: make([]geom.Vec3, w*h)}
}

// Clear zeroes every pixel.
func (f *Framebuffer) Clear() {
	for i := range f.pix {
		f.pix[i] = geom.Vec3{}
	}
}

// At returns the accumulated RGB at (x, y).
func (f *Framebuffer) At(x, y int) geom.Vec3 { return f.pix[y*f.W+x] }

// add blends color into (x, y) with weight w, clipping to the image.
func (f *Framebuffer) add(x, y int, color geom.Vec3, w float64) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H || w <= 0 {
		return
	}
	f.pix[y*f.W+x] = f.pix[y*f.W+x].Add(color.Scale(w))
}

// Splat renders one particle as a Gaussian-ish additive disc.
func (f *Framebuffer) Splat(cam Camera, p *particle.Particle) {
	f.splatPoint(cam, p.Pos, p.Color, p.Alpha, p.Size)
}

// splatPoint is the splat body shared by the record and columnar entry
// points.
//
//pslint:hotpath
func (f *Framebuffer) splatPoint(cam Camera, pos, color geom.Vec3, alpha, size float64) {
	f.splatPointOwned(cam, pos, color, alpha, size, 0, 1)
}

// splatPointOwned splats one particle into only the pixel rows owned by
// worker `owner` of `stride` total (rows y with y % stride == owner).
// The per-pixel weights are the exact expressions of the serial
// splatter — the ownership filter only skips whole rows — so summing
// the stride-1 result over all owners reproduces the serial image bit
// for bit.
//
//pslint:hotpath
func (f *Framebuffer) splatPointOwned(cam Camera, pos, color geom.Vec3, alpha, size float64, owner, stride int) {
	x, y, scale, ok := cam.Project(pos)
	if !ok {
		return
	}
	r := size * scale
	if r < 0.5 {
		r = 0.5
	}
	if r > 64 {
		r = 64 // clamp pathological splats
	}
	cx, cy := int(x), int(y)
	ir := int(r) + 1
	inv := 1 / (r * r)
	// Clip the disc to the image rows, then advance to the first row the
	// owner holds; stepping by stride keeps y0 % stride == owner without
	// a per-row modulus (and sidesteps negative-y remainders entirely).
	y0, y1 := cy-ir, cy+ir
	if y0 < 0 {
		y0 = 0
	}
	if y1 > f.H-1 {
		y1 = f.H - 1
	}
	if off := (owner - y0%stride + stride) % stride; off != 0 {
		y0 += off
	}
	for py := y0; py <= y1; py += stride {
		dy := py - cy
		for dx := -ir; dx <= ir; dx++ {
			d2 := float64(dx*dx + dy*dy)
			w := (1 - d2*inv) * alpha
			if w > 0 {
				f.add(cx+dx, py, color, w)
			}
		}
	}
}

// SplatBatch renders a batch of particles.
func (f *Framebuffer) SplatBatch(cam Camera, ps []particle.Particle) {
	for i := range ps {
		f.Splat(cam, &ps[i])
	}
}

// SplatColumns renders a columnar batch, reading only the rendering
// columns — the image generator's ingest path for decoded render
// records.
//
//pslint:hotpath
func (f *Framebuffer) SplatColumns(cam Camera, b *particle.Batch) {
	for i := range b.Pos {
		f.splatPoint(cam, b.Pos[i], b.Color[i], b.Alpha[i], b.Size[i])
	}
}

// SplatColumnsOwned renders a columnar batch into only the rows owned
// by worker `owner` of `stride` — the render plane's per-worker ingest.
//
//pslint:hotpath
func (f *Framebuffer) SplatColumnsOwned(cam Camera, b *particle.Batch, owner, stride int) {
	for i := range b.Pos {
		f.splatPointOwned(cam, b.Pos[i], b.Color[i], b.Alpha[i], b.Size[i], owner, stride)
	}
}

// Checksum returns a deterministic hash of the frame contents,
// quantized to 12 bits per channel so that the different floating-point
// accumulation orders of sequential and parallel runs agree.
func (f *Framebuffer) Checksum() uint64 {
	h := fnv.New64a()
	var buf [6]byte
	for _, p := range f.pix {
		q := func(v float64) uint16 {
			if v < 0 {
				v = 0
			}
			if v > 8 {
				v = 8
			}
			return uint16(v * 512)
		}
		r, g, b := q(p.X), q(p.Y), q(p.Z)
		buf[0], buf[1] = byte(r>>8), byte(r)
		buf[2], buf[3] = byte(g>>8), byte(g)
		buf[4], buf[5] = byte(b>>8), byte(b)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// WritePPM writes the frame as a binary PPM (P6), tone-mapping the
// accumulated energy with a simple x/(1+x) curve. The tone-map fans out
// across host goroutines; each worker maps a disjoint block of rows
// into a pooled scratch buffer, so the bytes written are independent of
// the worker count.
func (f *Framebuffer) WritePPM(w io.Writer) error {
	return f.writePPM(w, runtime.GOMAXPROCS(0))
}

// writePPM is WritePPM at an explicit tone-map width (tests drive the
// width directly to prove byte identity).
func (f *Framebuffer) writePPM(w io.Writer, workers int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	buf := bufpool.Get(3 * f.W * f.H)
	if workers > f.H {
		workers = f.H
	}
	if workers <= 1 {
		f.toneRows(buf, 0, f.H)
	} else {
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			y0, y1 := k*f.H/workers, (k+1)*f.H/workers
			wg.Add(1)
			go func() {
				defer wg.Done()
				f.toneRows(buf, y0, y1)
			}()
		}
		wg.Wait()
	}
	_, err := bw.Write(buf)
	bufpool.Put(buf)
	if err != nil {
		return err
	}
	return bw.Flush()
}

// toneRows tone-maps rows [y0, y1) into their slots of buf.
func (f *Framebuffer) toneRows(buf []byte, y0, y1 int) {
	tone := func(v float64) byte {
		if v < 0 {
			v = 0
		}
		return byte(255 * v / (1 + v))
	}
	for i := y0 * f.W; i < y1*f.W; i++ {
		p := f.pix[i]
		buf[3*i] = tone(p.X)
		buf[3*i+1] = tone(p.Y)
		buf[3*i+2] = tone(p.Z)
	}
}
