package render

import (
	"bytes"
	"fmt"
	"testing"

	"pscluster/internal/geom"
	"pscluster/internal/particle"
)

// edgeBatch builds a columnar batch whose splats exercise the ownership
// rule's corners: discs straddling many row boundaries, discs clipped
// by every image edge, sub-pixel and clamped-huge radii.
func edgeBatch() *particle.Batch {
	b := &particle.Batch{}
	add := func(pos geom.Vec3, size float64) {
		b.Pos = append(b.Pos, pos)
		b.Color = append(b.Color, geom.V(0.9, 0.5, 0.2))
		b.Alpha = append(b.Alpha, 0.8)
		b.Size = append(b.Size, size)
	}
	// Center of the image, radius spanning many rows.
	add(geom.V(0, 0, 0), 4)
	// Straddling each image edge (center projected just inside).
	add(geom.V(-9.8, 0, 0), 3)
	add(geom.V(9.8, 0, 0), 3)
	add(geom.V(0, 9.8, 0), 3)
	add(geom.V(0, -9.8, 0), 3)
	// Corners.
	add(geom.V(-9.9, 9.9, 0), 5)
	add(geom.V(9.9, -9.9, 0), 5)
	// Entirely off-screen but with a disc that reaches back in.
	add(geom.V(-10.5, 0, 0), 8)
	// Sub-pixel splat (radius clamps up to 0.5).
	add(geom.V(3, -2, 0), 0.001)
	// Pathological size (radius clamps down to 64).
	add(geom.V(-2, 5, 0), 1000)
	return b
}

// The ownership invariant behind the plane's bit-neutrality: splatting
// a batch once per owner at stride s touches each pixel exactly once,
// and the resulting floats equal the serial splatter's bit for bit —
// including rows at tile borders and discs clipped by image edges.
func TestOwnedSplatPartitionsExactly(t *testing.T) {
	b := edgeBatch()
	for _, cam := range []Camera{
		testCam(),
		PerspectiveCamera{Eye: geom.V(0, 0, 25), Look: geom.V(0, 0, 0),
			Up: geom.V(0, 1, 0), FOV: 1, W: 64, H: 64},
	} {
		// 64 rows: stride 7 leaves a ragged final tile, stride 64 gives
		// one row per owner, stride 100 leaves owners with no rows.
		for _, stride := range []int{1, 2, 3, 7, 64, 100} {
			serial := NewFramebuffer(64, 64)
			serial.SplatColumns(cam, b)
			owned := NewFramebuffer(64, 64)
			for owner := 0; owner < stride; owner++ {
				owned.SplatColumnsOwned(cam, b, owner, stride)
			}
			for y := 0; y < 64; y++ {
				for x := 0; x < 64; x++ {
					if serial.At(x, y) != owned.At(x, y) {
						t.Fatalf("%T stride %d: pixel (%d,%d) = %v, serial %v",
							cam, stride, x, y, owned.At(x, y), serial.At(x, y))
					}
				}
			}
		}
	}
}

// Each owner writes only rows y ≡ owner (mod stride): the union test
// above could hide a worker trespassing on another's rows if the
// trespass were overwritten, so check row ownership directly.
func TestOwnedSplatStaysInOwnedRows(t *testing.T) {
	b := edgeBatch()
	const stride = 5
	for owner := 0; owner < stride; owner++ {
		fb := NewFramebuffer(64, 64)
		fb.SplatColumnsOwned(testCam(), b, owner, stride)
		for y := 0; y < 64; y++ {
			if y%stride == owner {
				continue
			}
			for x := 0; x < 64; x++ {
				if fb.At(x, y) != (geom.Vec3{}) {
					t.Fatalf("owner %d wrote foreign row %d (col %d)", owner, y, x)
				}
			}
		}
	}
}

// A plane of any width reproduces the serial image: every worker sees
// every batch in ingest order and owns disjoint rows, so Checksum is
// the serial checksum.
func TestPlaneMatchesSerial(t *testing.T) {
	blob := encodeTestBlob(edgeBatch())
	serial := NewFramebuffer(64, 64)
	var wire particle.Batch
	for i := 0; i < 3; i++ {
		if err := decodeTestBlob(&wire, blob); err != nil {
			t.Fatal(err)
		}
		serial.SplatColumns(testCam(), &wire)
	}
	want := serial.Checksum()

	for _, width := range []int{1, 2, 3, 8} {
		p := NewPlane(width)
		fb := NewFramebuffer(64, 64)
		for i := 0; i < 3; i++ {
			if err := p.Ingest(fb, testCam(), blob, decodeTestBlob); err != nil {
				t.Fatal(err)
			}
		}
		p.Barrier()
		if got := fb.Checksum(); got != want {
			t.Errorf("width %d: checksum %x, serial %x", width, got, want)
		}
		// The finisher sees the completed frame.
		var sum uint64
		if err := <-p.FinishAsync(fb, func(f *Framebuffer) error {
			sum = f.Checksum()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != want {
			t.Errorf("width %d: finisher checksum %x, serial %x", width, sum, want)
		}
		p.Close()
		p.Close() // idempotent
	}
}

// Decode errors surface from Ingest before any worker sees the batch.
func TestPlaneIngestDecodeError(t *testing.T) {
	p := NewPlane(2)
	defer p.Close()
	fb := NewFramebuffer(16, 16)
	fail := func(*particle.Batch, []byte) error { return fmt.Errorf("boom") }
	if err := p.Ingest(fb, testCam(), nil, fail); err == nil {
		t.Fatal("decode error swallowed")
	}
	p.Barrier()
	if fb.Checksum() != NewFramebuffer(16, 16).Checksum() {
		t.Error("failed ingest still splatted")
	}
}

// encodeTestBlob/decodeTestBlob are a minimal wire format for plane
// tests (the real codec lives in internal/core and is tested there).
func encodeTestBlob(b *particle.Batch) []byte {
	var buf bytes.Buffer
	for i := range b.Pos {
		fmt.Fprintf(&buf, "%v %v %v %v %v %v %v %v\n",
			b.Pos[i].X, b.Pos[i].Y, b.Pos[i].Z,
			b.Color[i].X, b.Color[i].Y, b.Color[i].Z,
			b.Alpha[i], b.Size[i])
	}
	return buf.Bytes()
}

func decodeTestBlob(dst *particle.Batch, blob []byte) error {
	dst.Clear()
	for _, line := range bytes.Split(blob, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var pos, color geom.Vec3
		var alpha, size float64
		if _, err := fmt.Sscan(string(line),
			&pos.X, &pos.Y, &pos.Z, &color.X, &color.Y, &color.Z, &alpha, &size); err != nil {
			return err
		}
		dst.Pos = append(dst.Pos, pos)
		dst.Color = append(dst.Color, color)
		dst.Alpha = append(dst.Alpha, alpha)
		dst.Size = append(dst.Size, size)
	}
	return nil
}

// The parallel tone-map writes byte-identical PPMs at every worker
// count, including counts that do not divide the row count.
func TestWritePPMWidthIdentity(t *testing.T) {
	fb := NewFramebuffer(48, 41)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 48, H: 41}
	fb.SplatColumns(cam, edgeBatch())

	var want bytes.Buffer
	if err := fb.writePPM(&want, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 41, 200} {
		var got bytes.Buffer
		if err := fb.writePPM(&got, workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d: PPM bytes differ from serial", workers)
		}
	}
}
