package render

import (
	"io"
	"testing"

	"pscluster/internal/geom"
	"pscluster/internal/particle"
)

func benchBatch(n int) []particle.Particle {
	r := geom.NewRNG(1)
	ps := make([]particle.Particle, n)
	for i := range ps {
		ps[i] = particle.Particle{
			Pos:   geom.V(r.Range(-10, 10), r.Range(-10, 10), r.Range(-10, 10)),
			Color: geom.V(r.Float64(), r.Float64(), r.Float64()),
			Alpha: 0.5, Size: 0.5,
		}
	}
	return ps
}

func BenchmarkSplatBatch(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	ps := benchBatch(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Clear()
		fb.SplatBatch(cam, ps)
	}
}

func BenchmarkPerspectiveSplat(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := PerspectiveCamera{Eye: geom.V(0, 0, 30), Look: geom.V(0, 0, 0),
		Up: geom.V(0, 1, 0), FOV: 1, W: 256, H: 256}
	ps := benchBatch(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Clear()
		fb.SplatBatch(cam, ps)
	}
}

func BenchmarkChecksum(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	fb.SplatBatch(cam, benchBatch(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Checksum()
	}
}

func BenchmarkWritePPM(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	fb.SplatBatch(cam, benchBatch(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fb.WritePPM(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
