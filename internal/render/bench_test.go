package render

import (
	"fmt"
	"io"
	"testing"

	"pscluster/internal/geom"
	"pscluster/internal/particle"
)

func benchBatch(n int) []particle.Particle {
	r := geom.NewRNG(1)
	ps := make([]particle.Particle, n)
	for i := range ps {
		ps[i] = particle.Particle{
			Pos:   geom.V(r.Range(-10, 10), r.Range(-10, 10), r.Range(-10, 10)),
			Color: geom.V(r.Float64(), r.Float64(), r.Float64()),
			Alpha: 0.5, Size: 0.5,
		}
	}
	return ps
}

func BenchmarkSplatBatch(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	ps := benchBatch(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Clear()
		fb.SplatBatch(cam, ps)
	}
}

func BenchmarkPerspectiveSplat(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := PerspectiveCamera{Eye: geom.V(0, 0, 30), Look: geom.V(0, 0, 0),
		Up: geom.V(0, 1, 0), FOV: 1, W: 256, H: 256}
	ps := benchBatch(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Clear()
		fb.SplatBatch(cam, ps)
	}
}

func BenchmarkChecksum(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	fb.SplatBatch(cam, benchBatch(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Checksum()
	}
}

func BenchmarkWritePPM(b *testing.B) {
	fb := NewFramebuffer(256, 256)
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	fb.SplatBatch(cam, benchBatch(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fb.WritePPM(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColumns is benchBatch as a columnar render batch.
func benchColumns(n int) *particle.Batch {
	ps := benchBatch(n)
	cols := &particle.Batch{}
	for i := range ps {
		cols.Pos = append(cols.Pos, ps[i].Pos)
		cols.Color = append(cols.Color, ps[i].Color)
		cols.Alpha = append(cols.Alpha, ps[i].Alpha)
		cols.Size = append(cols.Size, ps[i].Size)
	}
	return cols
}

// benchDecode stands in for the wire decode in plane benchmarks: it
// copies a template's render columns into the leased batch, charging
// roughly what decodeRenderColumnsInto charges without dragging the
// core codec into this package.
func benchDecode(src *particle.Batch) func(*particle.Batch, []byte) error {
	return func(dst *particle.Batch, _ []byte) error {
		dst.Clear()
		dst.Pos = append(dst.Pos, src.Pos...)
		dst.Color = append(dst.Color, src.Color...)
		dst.Alpha = append(dst.Alpha, src.Alpha...)
		dst.Size = append(dst.Size, src.Size...)
		return nil
	}
}

// BenchmarkRenderTiled is the tiled-vs-serial number behind
// BENCH_render.json: one op renders a frame of 8 ingested batches,
// either through the serial splatter or through a plane of the given
// width. On a single-core host the widths are expected flat — the
// artifact records that honestly.
func BenchmarkRenderTiled(b *testing.B) {
	const nBatches, perBatch = 8, 2000
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	decode := benchDecode(benchColumns(perBatch))
	b.Run("serial", func(b *testing.B) {
		fb := NewFramebuffer(256, 256)
		var wire particle.Batch
		for i := 0; i < b.N; i++ {
			fb.Clear()
			for j := 0; j < nBatches; j++ {
				if err := decode(&wire, nil); err != nil {
					b.Fatal(err)
				}
				fb.SplatColumns(cam, &wire)
			}
		}
	})
	for _, width := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", width), func(b *testing.B) {
			p := NewPlane(width)
			defer p.Close()
			fb := NewFramebuffer(256, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fb.Clear()
				for j := 0; j < nBatches; j++ {
					if err := p.Ingest(fb, cam, nil, decode); err != nil {
						b.Fatal(err)
					}
				}
				p.Barrier()
			}
		})
	}
}

// BenchmarkRenderPipelined is the pipelined-vs-sync number behind
// BENCH_render.json: one op renders 4 frames at plane width 4, with the
// per-frame finish (checksum + tone-mapped PPM to io.Discard) either
// inline after the barrier or overlapped on the finisher goroutine
// while the next frame ingests — the PipelineFrames shape.
func BenchmarkRenderPipelined(b *testing.B) {
	const frames, nBatches, perBatch = 4, 4, 2000
	cam := OrthoCamera{Region: geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), W: 256, H: 256}
	decode := benchDecode(benchColumns(perBatch))
	finish := func(fb *Framebuffer) error {
		_ = fb.Checksum()
		return fb.WritePPM(io.Discard)
	}
	b.Run("sync", func(b *testing.B) {
		p := NewPlane(4)
		defer p.Close()
		fb := NewFramebuffer(256, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for f := 0; f < frames; f++ {
				fb.Clear()
				for j := 0; j < nBatches; j++ {
					if err := p.Ingest(fb, cam, nil, decode); err != nil {
						b.Fatal(err)
					}
				}
				p.Barrier()
				if err := finish(fb); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		p := NewPlane(4)
		defer p.Close()
		fbs := [2]*Framebuffer{NewFramebuffer(256, 256), NewFramebuffer(256, 256)}
		var pending [2]<-chan error
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for f := 0; f < frames; f++ {
				cur := f & 1
				if pending[cur] != nil {
					if err := <-pending[cur]; err != nil {
						b.Fatal(err)
					}
					pending[cur] = nil
				}
				fb := fbs[cur]
				fb.Clear()
				for j := 0; j < nBatches; j++ {
					if err := p.Ingest(fb, cam, nil, decode); err != nil {
						b.Fatal(err)
					}
				}
				p.Barrier()
				pending[cur] = p.FinishAsync(fb, finish)
			}
		}
		b.StopTimer()
		for _, ch := range pending {
			if ch != nil {
				if err := <-ch; err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
