// Package bufpool recycles wire-format send buffers through
// capacity-keyed sync.Pools, so the steady-state send path of the
// simulated transport — creation scatters, particle exchanges,
// balancing donations, ghost bands — performs zero heap allocations.
//
// Ownership follows the message: the encoder Gets a buffer, hands it
// to exactly one send, and whoever the send leaves owning it Puts it
// back — the unique receiver via transport.Message.Release on the
// virtual fabric, the sender itself once the frame drains on the net
// fabric. A missed Put is safe (the buffer is garbage collected); a
// double Put is not (two users would share backing memory), so every
// send carries a buffer encoded for that destination alone and
// broadcasts encode per peer. The bufownership analyzer checks this
// contract statically (DESIGN.md §15).
//
// Buffers come back dirty: Get does not zero the returned slice, so
// encoders must write every byte they claim, including padding.
package bufpool

import (
	"math/bits"
	"sync"
)

// Capacity classes are powers of two: class c holds buffers whose
// capacity is at least 1<<c bytes. minClass keeps tiny buffers (empty
// batches are 4 bytes) from fragmenting into useless classes; anything
// beyond maxClass is left to the garbage collector.
const (
	minClass = 6  // 64 B
	maxClass = 26 // 64 MiB
)

// entry is the pooled slice-header box. sync.Pool stores interface
// values, and putting a raw []byte in one allocates a fresh header box
// on every Put; cycling *entry boxes through their own pool keeps the
// whole Get/Put round trip allocation-free.
type entry struct{ b []byte }

var headers = sync.Pool{New: func() any { return new(entry) }}

var classes [maxClass + 1]sync.Pool

// Get returns a buffer of length n with dirty contents. The buffer
// comes from the smallest capacity class that holds n bytes, or is
// freshly allocated when that class is empty or n is out of the pooled
// range.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c > maxClass {
		return make([]byte, n)
	}
	if e, ok := classes[c].Get().(*entry); ok {
		b := e.b[:n]
		e.b = nil
		headers.Put(e)
		return b
	}
	return make([]byte, n, 1<<c)
}

// Put files buf by its capacity for reuse. Buffers outside the pooled
// capacity range (including nil) are dropped. The caller must not use
// buf after Put, and must never Put the same buffer twice.
func Put(buf []byte) {
	c := capClass(cap(buf))
	if c < minClass || c > maxClass {
		return
	}
	e := headers.Get().(*entry)
	e.b = buf[:0]
	classes[c].Put(e)
}

// sizeClass returns the smallest class whose capacity 1<<c holds n
// bytes: every buffer filed under class c has cap >= 1<<c >= n, so a
// class hit always satisfies the request.
func sizeClass(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2 n); 0 for n == 1
	if c < minClass {
		c = minClass
	}
	return c
}

// capClass returns the largest class whose capacity a buffer of the
// given cap can serve: floor(log2 cap).
func capClass(c int) int {
	return bits.Len(uint(c)) - 1
}
