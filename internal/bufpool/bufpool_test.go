package bufpool

import "testing"

func TestGetLengthAndCapacity(t *testing.T) {
	for _, n := range []int{1, 4, 63, 64, 65, 140, 4096, 4097, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) returned cap %d < n", n, cap(b))
		}
		Put(b)
	}
}

func TestGetZeroAndNegative(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := Get(-3); b != nil {
		t.Fatalf("Get(-3) = %v, want nil", b)
	}
	Put(nil) // must not panic
}

func TestPutGetReusesBuffer(t *testing.T) {
	// A buffer filed under class c must come back for any request the
	// class serves. Stamp the backing array to prove identity.
	b := Get(1000) // class 10, cap 1024
	b[0] = 0xAB
	Put(b)
	got := Get(600) // class 10 as well (ceil log2 600 = 10)
	if got[0] != 0xAB {
		t.Fatalf("Get after Put returned a fresh buffer (byte %#x), want the pooled one", got[0])
	}
	if len(got) != 600 {
		t.Fatalf("reused buffer has len %d, want 600", len(got))
	}
	Put(got)
}

func TestClassInvariant(t *testing.T) {
	// Put files by floor(log2 cap); Get asks ceil(log2 n). Any buffer a
	// class hands out must have cap >= the request.
	small := make([]byte, 0, 100) // floor class 6 (64)
	Put(small)
	got := Get(64) // ceil class 6
	if cap(got) < 64 {
		t.Fatalf("class 6 served cap %d < 64", cap(got))
	}
	Put(got)
}

func TestOutOfRangeCapsAreDropped(t *testing.T) {
	tiny := make([]byte, 0, 8) // below minClass: dropped, must not panic
	Put(tiny)
	if b := Get(8); cap(b) < 8 {
		t.Fatalf("Get(8) returned cap %d", cap(b))
	}
}

// TestSteadyStateZeroAllocs is the pool's core guarantee: once warm, a
// Get/Put cycle performs no heap allocation — neither for the buffer
// nor for the sync.Pool interface box (the *entry header trick).
func TestSteadyStateZeroAllocs(t *testing.T) {
	Put(Get(4096)) // warm the class and the header pool
	allocs := testing.AllocsPerRun(200, func() {
		b := Get(4096)
		Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.2f objects/op, want 0", allocs)
	}
}

func BenchmarkGetPut(b *testing.B) {
	Put(Get(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(4096))
	}
}
