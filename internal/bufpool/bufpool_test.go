package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndCapacity(t *testing.T) {
	for _, n := range []int{1, 4, 63, 64, 65, 140, 4096, 4097, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) returned cap %d < n", n, cap(b))
		}
		Put(b)
	}
}

func TestGetZeroAndNegative(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := Get(-3); b != nil {
		t.Fatalf("Get(-3) = %v, want nil", b)
	}
	Put(nil) // must not panic
}

func TestPutGetReusesBuffer(t *testing.T) {
	// A buffer filed under class c must come back for any request the
	// class serves. Stamp the backing array to prove identity. Retried
	// because the race detector makes sync.Pool drop a fraction of
	// Puts on purpose.
	reused := false
	for try := 0; try < 20 && !reused; try++ {
		b := Get(1000) // class 10, cap 1024
		b[0] = 0xAB
		Put(b)
		got := Get(600) // class 10 as well (ceil log2 600 = 10)
		if len(got) != 600 {
			t.Fatalf("reused buffer has len %d, want 600", len(got))
		}
		reused = got[0] == 0xAB
		Put(got)
	}
	if !reused {
		t.Fatal("Get after Put never returned the pooled buffer")
	}
}

func TestClassInvariant(t *testing.T) {
	// Put files by floor(log2 cap); Get asks ceil(log2 n). Any buffer a
	// class hands out must have cap >= the request.
	small := make([]byte, 0, 100) // floor class 6 (64)
	Put(small)
	got := Get(64) // ceil class 6
	if cap(got) < 64 {
		t.Fatalf("class 6 served cap %d < 64", cap(got))
	}
	Put(got)
}

func TestOutOfRangeCapsAreDropped(t *testing.T) {
	tiny := make([]byte, 0, 8) // below minClass: dropped, must not panic
	Put(tiny)
	if b := Get(8); cap(b) < 8 {
		t.Fatalf("Get(8) returned cap %d", cap(b))
	}
}

// TestSteadyStateZeroAllocs is the pool's core guarantee: once warm, a
// Get/Put cycle performs no heap allocation — neither for the buffer
// nor for the sync.Pool interface box (the *entry header trick).
func TestSteadyStateZeroAllocs(t *testing.T) {
	Put(Get(4096)) // warm the class and the header pool
	allocs := testing.AllocsPerRun(200, func() {
		b := Get(4096)
		Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.2f objects/op, want 0", allocs)
	}
}

// TestPutZeroCapBuffer: releasing an empty message payload (a zero-cap
// slice, the shape a Release of a drained Message produces) must be a
// silent no-op, not a class-table panic — capClass(0) is -1.
func TestPutZeroCapBuffer(t *testing.T) {
	Put([]byte{})
	Put(make([]byte, 0))
	var nilSlice []byte
	Put(nilSlice)
}

// TestPutAdoptsForeignBuffer: Put files any in-range buffer by its
// capacity, including one the pool never handed out — the net fabric's
// send path reclaims payloads that non-pooled encoders built with
// make. Adoption must serve later Gets of the same class. Retried for
// the race detector's deliberate sync.Pool drops.
func TestPutAdoptsForeignBuffer(t *testing.T) {
	adopted := false
	for try := 0; try < 20 && !adopted; try++ {
		foreign := make([]byte, 512) // class 9, never came from Get
		foreign[0] = 0x5A
		Put(foreign)
		got := Get(512)
		adopted = got[0] == 0x5A
		Put(got)
	}
	if !adopted {
		t.Fatal("Get(512) never returned the adopted foreign buffer")
	}
}

// TestConcurrentGetPut hammers the pool from many goroutines across
// several size classes. Run under -race (make race does) this is the
// proof the capacity-keyed pools and the header-box pool are safe for
// the net fabric's pattern: reader goroutines Get while the owner
// goroutine Puts.
func TestConcurrentGetPut(t *testing.T) {
	sizes := []int{64, 1000, 4096, 1 << 16}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := sizes[(seed+i)%len(sizes)]
				b := Get(n)
				if len(b) != n {
					t.Errorf("Get(%d) returned len %d", n, len(b))
					return
				}
				b[0] = byte(i) // touch the buffer so -race sees any sharing
				b[n-1] = byte(seed)
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	Put(Get(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(4096))
	}
}
