package geom

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGUnitVec(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.UnitVec()
	}
}

func BenchmarkBoxDomainGenerate(b *testing.B) {
	d := BoxDomain{B: Box(V(-10, -10, -10), V(10, 10, 10))}
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		d.Generate(r)
	}
}

func BenchmarkSphereDomainGenerate(b *testing.B) {
	d := SphereDomain{InnerR: 1, OuterR: 5}
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		d.Generate(r)
	}
}

func BenchmarkConeDomainGenerate(b *testing.B) {
	d := ConeDomain{Apex: V(0, 0, 0), Base: V(0, 5, 0), Radius: 2}
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		d.Generate(r)
	}
}

func BenchmarkVecOps(b *testing.B) {
	v, w := V(1, 2, 3), V(4, 5, 6)
	var acc Vec3
	for i := 0; i < b.N; i++ {
		acc = acc.Add(v.Cross(w).Scale(1e-9))
	}
	_ = acc
}
