package geom

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). Every particle system owns one, seeded from the system
// identifier, so the manager creates identical particle streams no matter
// how many calculator processes participate — the property the model
// relies on to let all processes create the particle systems "in the same
// order" (paper §3.1.3).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Save returns the generator state, which NewRNG restores exactly. The
// engine threads per-particle streams through this: stochastic actions
// draw from a particle's own saved state, so results are identical no
// matter which process applies the action.
func (r *RNG) Save() uint64 { return r.state }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("geom: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// UnitVec returns a uniformly distributed unit vector.
func (r *RNG) UnitVec() Vec3 {
	z := r.Range(-1, 1)
	t := r.Range(0, 2*math.Pi)
	s := math.Sqrt(1 - z*z)
	return Vec3{s * math.Cos(t), s * math.Sin(t), z}
}

// InBox returns a uniformly distributed point in box b.
func (r *RNG) InBox(b AABB) Vec3 {
	return Vec3{
		r.Range(b.Min.X, b.Max.X),
		r.Range(b.Min.Y, b.Max.Y),
		r.Range(b.Min.Z, b.Max.Z),
	}
}
