package geom

import (
	"math"
	"testing"
)

// checkDomain draws many samples from a domain and verifies they fall
// within its bounds (and, where meaningful, satisfy Within).
func checkDomain(t *testing.T, name string, d EmitDomain, checkWithin bool) {
	t.Helper()
	r := NewRNG(42)
	b := d.Bounds()
	// Tolerate tiny numeric slop at the boundary.
	eps := V(1e-9, 1e-9, 1e-9)
	grown := AABB{Min: b.Min.Sub(eps), Max: b.Max.Add(eps)}
	for i := 0; i < 2000; i++ {
		p := d.Generate(r)
		if !p.IsFinite() {
			t.Fatalf("%s: sample %d not finite: %v", name, i, p)
		}
		if !grown.Contains(p) {
			t.Fatalf("%s: sample %v outside bounds %+v", name, p, b)
		}
		if checkWithin && !d.Within(p) {
			t.Fatalf("%s: sample %v not Within its own domain", name, p)
		}
	}
}

func TestPointDomain(t *testing.T) {
	d := PointDomain{P: V(1, 2, 3)}
	checkDomain(t, "point", d, true)
	if d.Within(V(1, 2, 3.1)) {
		t.Error("Within accepts other point")
	}
}

func TestLineDomain(t *testing.T) {
	checkDomain(t, "line", LineDomain{A: V(0, 0, 0), B: V(10, 5, -3)}, true)
}

func TestBoxDomain(t *testing.T) {
	d := BoxDomain{B: Box(V(-5, 0, 2), V(5, 10, 4))}
	checkDomain(t, "box", d, true)
	if d.Within(V(0, -1, 3)) {
		t.Error("Within accepts exterior point")
	}
}

func TestSphereDomainShell(t *testing.T) {
	d := SphereDomain{Center: V(1, 1, 1), InnerR: 2, OuterR: 5}
	checkDomain(t, "sphere", d, true)
	r := NewRNG(7)
	for i := 0; i < 500; i++ {
		p := d.Generate(r)
		dist := p.Dist(d.Center)
		if dist < 2-1e-9 || dist > 5+1e-9 {
			t.Fatalf("shell sample at distance %v", dist)
		}
	}
	if d.Within(V(1, 1, 1)) {
		t.Error("center should be outside shell with InnerR=2")
	}
}

func TestDiscDomain(t *testing.T) {
	d := DiscDomain{Center: V(0, 3, 0), Normal: V(0, 1, 0), InnerR: 1, OuterR: 4}
	checkDomain(t, "disc", d, true)
	r := NewRNG(3)
	for i := 0; i < 500; i++ {
		p := d.Generate(r)
		if math.Abs(p.Y-3) > 1e-9 {
			t.Fatalf("disc sample off-plane: %v", p)
		}
	}
}

func TestCylinderDomain(t *testing.T) {
	checkDomain(t, "cylinder", CylinderDomain{A: V(0, 0, 0), B: V(0, 10, 0), Radius: 2}, true)
}

func TestConeDomain(t *testing.T) {
	d := ConeDomain{Apex: V(0, 0, 0), Base: V(0, 4, 0), Radius: 2}
	checkDomain(t, "cone", d, true)
	// Points near the apex must have small radius.
	if d.Within(V(1.9, 0.1, 0)) {
		t.Error("wide point near apex accepted")
	}
	if !d.Within(V(1.9, 3.9, 0)) {
		t.Error("wide point near base rejected")
	}
}

func TestTriangleDomain(t *testing.T) {
	d := TriangleDomain{A: V(0, 0, 0), B: V(4, 0, 0), C: V(0, 4, 0)}
	checkDomain(t, "triangle", d, true)
	if d.Within(V(3, 3, 0)) {
		t.Error("point outside hypotenuse accepted")
	}
	if !d.Within(V(1, 1, 0)) {
		t.Error("interior point rejected")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(100)
	same := true
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGRangeAndIntn(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of range: %v", v)
		}
		n := r.Intn(13)
		if n < 0 || n >= 13 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(12)
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v", variance)
	}
}

func TestRNGUnitVec(t *testing.T) {
	r := NewRNG(8)
	var mean Vec3
	for i := 0; i < 20000; i++ {
		v := r.UnitVec()
		if math.Abs(v.Len()-1) > 1e-9 {
			t.Fatalf("unit vec length %v", v.Len())
		}
		mean = mean.Add(v)
	}
	if mean.Scale(1.0/20000).Len() > 0.02 {
		t.Errorf("unit vectors not isotropic: mean %v", mean.Scale(1.0/20000))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
