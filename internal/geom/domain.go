package geom

import "math"

// An EmitDomain is a region of space with a probability distribution over
// it: the "pDomain" abstraction of the McAllister Particle System API
// that the validated library was built from. Source actions draw initial
// particle positions and velocities from EmitDomains.
type EmitDomain interface {
	// Generate draws a point from the domain's distribution.
	Generate(r *RNG) Vec3
	// Within reports whether p lies inside the domain (used by sinks,
	// which kill or keep particles relative to a domain).
	Within(p Vec3) bool
	// Bounds returns an AABB enclosing the domain. The model uses it to
	// compute the extent of a finite simulated space that tightly fits
	// the particle systems (paper §5.1, "FS").
	Bounds() AABB
}

// PointDomain is a single point.
type PointDomain struct{ P Vec3 }

// Generate returns the point itself.
func (d PointDomain) Generate(_ *RNG) Vec3 { return d.P }

// Within reports whether p coincides with the point.
func (d PointDomain) Within(p Vec3) bool { return p == d.P }

// Bounds returns a degenerate box at the point.
func (d PointDomain) Bounds() AABB { return AABB{Min: d.P, Max: d.P} }

// LineDomain is the segment from A to B, uniform along its length.
type LineDomain struct{ A, B Vec3 }

// Generate draws a uniform point on the segment.
func (d LineDomain) Generate(r *RNG) Vec3 { return d.A.Lerp(d.B, r.Float64()) }

// Within reports whether p lies on the segment (within a small tolerance).
func (d LineDomain) Within(p Vec3) bool {
	ab := d.B.Sub(d.A)
	l2 := ab.Len2()
	if l2 == 0 {
		return p.Dist(d.A) < 1e-9
	}
	t := p.Sub(d.A).Dot(ab) / l2
	if t < 0 || t > 1 {
		return false
	}
	return p.Dist(d.A.Add(ab.Scale(t))) < 1e-9
}

// Bounds returns the box spanning the segment endpoints.
func (d LineDomain) Bounds() AABB { return Box(d.A, d.B) }

// BoxDomain is a solid axis-aligned box, uniform over its volume.
type BoxDomain struct{ B AABB }

// Generate draws a uniform point in the box.
func (d BoxDomain) Generate(r *RNG) Vec3 { return r.InBox(d.B) }

// Within reports whether p lies inside the box.
func (d BoxDomain) Within(p Vec3) bool { return d.B.Contains(p) }

// Bounds returns the box.
func (d BoxDomain) Bounds() AABB { return d.B }

// SphereDomain is a spherical shell between InnerR and OuterR around a
// center, uniform over the shell volume.
type SphereDomain struct {
	Center         Vec3
	InnerR, OuterR float64
}

// Generate draws a uniform point in the shell.
func (d SphereDomain) Generate(r *RNG) Vec3 {
	// Radius distributed so volume is uniform: r^3 uniform between the cubes.
	lo, hi := d.InnerR*d.InnerR*d.InnerR, d.OuterR*d.OuterR*d.OuterR
	rad := math.Cbrt(r.Range(lo, hi))
	return d.Center.Add(r.UnitVec().Scale(rad))
}

// Within reports whether p lies inside the shell.
func (d SphereDomain) Within(p Vec3) bool {
	dist := p.Dist(d.Center)
	return dist >= d.InnerR && dist <= d.OuterR
}

// Bounds returns the box enclosing the outer sphere.
func (d SphereDomain) Bounds() AABB {
	e := V(d.OuterR, d.OuterR, d.OuterR)
	return AABB{Min: d.Center.Sub(e), Max: d.Center.Add(e)}
}

// DiscDomain is a flat disc (annulus) with the given normal, uniform over
// its area.
type DiscDomain struct {
	Center         Vec3
	Normal         Vec3
	InnerR, OuterR float64
}

// basis returns two unit vectors orthogonal to the disc normal.
func (d DiscDomain) basis() (Vec3, Vec3) {
	n := d.Normal.Norm()
	ref := V(1, 0, 0)
	if math.Abs(n.X) > 0.9 {
		ref = V(0, 1, 0)
	}
	u := n.Cross(ref).Norm()
	return u, n.Cross(u)
}

// Generate draws a uniform point on the annulus.
func (d DiscDomain) Generate(r *RNG) Vec3 {
	u, v := d.basis()
	rad := math.Sqrt(r.Range(d.InnerR*d.InnerR, d.OuterR*d.OuterR))
	t := r.Range(0, 2*math.Pi)
	return d.Center.Add(u.Scale(rad * math.Cos(t))).Add(v.Scale(rad * math.Sin(t)))
}

// Within reports whether p lies on the annulus (within a small tolerance
// off-plane).
func (d DiscDomain) Within(p Vec3) bool {
	n := d.Normal.Norm()
	off := p.Sub(d.Center)
	if math.Abs(off.Dot(n)) > 1e-9 {
		return false
	}
	rad := off.Len()
	return rad >= d.InnerR && rad <= d.OuterR
}

// Bounds returns a box enclosing the disc.
func (d DiscDomain) Bounds() AABB {
	e := V(d.OuterR, d.OuterR, d.OuterR)
	return AABB{Min: d.Center.Sub(e), Max: d.Center.Add(e)}
}

// CylinderDomain is a solid cylinder from A to B with the given radius,
// uniform over its volume.
type CylinderDomain struct {
	A, B   Vec3
	Radius float64
}

// Generate draws a uniform point in the cylinder.
func (d CylinderDomain) Generate(r *RNG) Vec3 {
	axis := d.B.Sub(d.A)
	disc := DiscDomain{Center: V(0, 0, 0), Normal: axis, OuterR: d.Radius}
	return d.A.Add(axis.Scale(r.Float64())).Add(disc.Generate(r))
}

// Within reports whether p lies inside the cylinder.
func (d CylinderDomain) Within(p Vec3) bool {
	axis := d.B.Sub(d.A)
	l2 := axis.Len2()
	if l2 == 0 {
		return p.Dist(d.A) <= d.Radius
	}
	t := p.Sub(d.A).Dot(axis) / l2
	if t < 0 || t > 1 {
		return false
	}
	return p.Dist(d.A.Add(axis.Scale(t))) <= d.Radius
}

// Bounds returns a box enclosing the cylinder.
func (d CylinderDomain) Bounds() AABB {
	e := V(d.Radius, d.Radius, d.Radius)
	return Box(d.A, d.B).Union(AABB{Min: d.A.Sub(e), Max: d.A.Add(e)}).
		Union(AABB{Min: d.B.Sub(e), Max: d.B.Add(e)})
}

// ConeDomain is a solid cone with apex at Apex opening toward Base, with
// the given base radius. Fountain nozzles draw initial velocities from
// cones (paper §5.2).
type ConeDomain struct {
	Apex, Base Vec3
	Radius     float64
}

// Generate draws a point in the cone, denser toward the apex (uniform in
// the parameterization, which is what the original API does for velocity
// cones).
func (d ConeDomain) Generate(r *RNG) Vec3 {
	t := r.Float64()
	axis := d.Base.Sub(d.Apex)
	disc := DiscDomain{Normal: axis, OuterR: d.Radius * t}
	return d.Apex.Add(axis.Scale(t)).Add(disc.Generate(r))
}

// Within reports whether p lies inside the cone.
func (d ConeDomain) Within(p Vec3) bool {
	axis := d.Base.Sub(d.Apex)
	l2 := axis.Len2()
	if l2 == 0 {
		return p.Dist(d.Apex) < 1e-9
	}
	t := p.Sub(d.Apex).Dot(axis) / l2
	if t < 0 || t > 1 {
		return false
	}
	return p.Dist(d.Apex.Add(axis.Scale(t))) <= d.Radius*t
}

// Bounds returns a box enclosing the cone.
func (d ConeDomain) Bounds() AABB {
	e := V(d.Radius, d.Radius, d.Radius)
	return Box(d.Apex, d.Base).Union(AABB{Min: d.Base.Sub(e), Max: d.Base.Add(e)})
}

// TriangleDomain is a flat triangle, uniform over its area.
type TriangleDomain struct{ A, B, C Vec3 }

// Generate draws a uniform point on the triangle.
func (d TriangleDomain) Generate(r *RNG) Vec3 {
	u, v := r.Float64(), r.Float64()
	if u+v > 1 {
		u, v = 1-u, 1-v
	}
	return d.A.Add(d.B.Sub(d.A).Scale(u)).Add(d.C.Sub(d.A).Scale(v))
}

// Within reports whether p lies on the triangle (within tolerance
// off-plane).
func (d TriangleDomain) Within(p Vec3) bool {
	n := d.B.Sub(d.A).Cross(d.C.Sub(d.A))
	if n.Len2() == 0 {
		return false
	}
	if math.Abs(p.Sub(d.A).Dot(n.Norm())) > 1e-9 {
		return false
	}
	// Barycentric test.
	v0, v1, v2 := d.C.Sub(d.A), d.B.Sub(d.A), p.Sub(d.A)
	d00, d01, d02 := v0.Dot(v0), v0.Dot(v1), v0.Dot(v2)
	d11, d12 := v1.Dot(v1), v1.Dot(v2)
	inv := 1 / (d00*d11 - d01*d01)
	u := (d11*d02 - d01*d12) * inv
	v := (d00*d12 - d01*d02) * inv
	return u >= -1e-12 && v >= -1e-12 && u+v <= 1+1e-12
}

// Bounds returns the box spanning the triangle vertices.
func (d TriangleDomain) Bounds() AABB {
	return Box(d.A, d.B).Union(Box(d.A, d.C))
}
