// Package geom provides the small geometric vocabulary the particle model
// is built on: 3-component vectors, axis-aligned boxes, planes, and the
// stochastic emission domains of the McAllister Particle System API.
//
// Everything in this package is deterministic given a seed; the parallel
// engine depends on that to make sequential and distributed runs produce
// identical particle sets.
package geom

import (
	"fmt"
	"math"
)

// Axis selects one of the three coordinate axes. The model slices the
// simulated space into domains along a single axis (paper §3.1.4).
type Axis int

// The three coordinate axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String returns "X", "Y" or "Z".
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "X"
	case AxisY:
		return "Y"
	case AxisZ:
		return "Z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Vec3 is a 3-component vector of float64. Particle positions,
// orientations and velocities are Vec3s (paper §3.1.2).
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for Vec3{x, y, z}.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared length of v.
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged rather than producing NaNs.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp returns v + t*(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// Component returns the coordinate of v along axis a.
func (v Vec3) Component(a Axis) float64 {
	switch a {
	case AxisX:
		return v.X
	case AxisY:
		return v.Y
	default:
		return v.Z
	}
}

// WithComponent returns a copy of v with the coordinate along axis a
// replaced by c.
func (v Vec3) WithComponent(a Axis, c float64) Vec3 {
	switch a {
	case AxisX:
		v.X = c
	case AxisY:
		v.Y = c
	default:
		v.Z = c
	}
	return v
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// AABB is an axis-aligned bounding box. The finite simulated space of the
// model (paper §5.1, "FS") is an AABB; emission boxes are AABBs too.
type AABB struct {
	Min, Max Vec3
}

// Box returns the AABB spanning the two corner points, normalizing the
// corner ordering.
func Box(a, b Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// Contains reports whether p lies inside the box (inclusive bounds).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Size returns the extent of the box along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the center point of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Extent returns the length of the box along axis a.
func (b AABB) Extent(a Axis) float64 { return b.Max.Component(a) - b.Min.Component(a) }

// Clamp returns p clamped into the box.
func (b AABB) Clamp(p Vec3) Vec3 {
	return Vec3{
		math.Max(b.Min.X, math.Min(b.Max.X, p.X)),
		math.Max(b.Min.Y, math.Min(b.Max.Y, p.Y)),
		math.Max(b.Min.Z, math.Min(b.Max.Z, p.Z)),
	}
}

// Union returns the smallest AABB containing both boxes.
func (b AABB) Union(o AABB) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y), math.Min(b.Min.Z, o.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y), math.Max(b.Max.Z, o.Max.Z)},
	}
}

// Plane is an infinite plane given by a point and a normal. Bounce and
// sink actions test particles against planes.
type Plane struct {
	Point  Vec3
	Normal Vec3
}

// NewPlane returns a plane through p with normal n (normalized).
func NewPlane(p, n Vec3) Plane { return Plane{Point: p, Normal: n.Norm()} }

// SignedDist returns the signed distance from q to the plane; positive on
// the side the normal points to.
func (pl Plane) SignedDist(q Vec3) float64 { return q.Sub(pl.Point).Dot(pl.Normal) }

// Above reports whether q is strictly on the positive side of the plane.
func (pl Plane) Above(q Vec3) bool { return pl.SignedDist(q) > 0 }
