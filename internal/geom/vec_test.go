package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecArithmetic(t *testing.T) {
	a, b := V(1, 2, 3), V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e3)
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Len2()) * (1 + b.Len2())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormLength(t *testing.T) {
	if got := V(3, 4, 0).Norm(); !almostEq(got.Len(), 1) {
		t.Errorf("Norm length = %v", got.Len())
	}
	if got := V(0, 0, 0).Norm(); got != V(0, 0, 0) {
		t.Errorf("Norm of zero = %v", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V(1, 1, 1), V(3, 5, 7)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(2, 3, 4) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestComponentRoundTrip(t *testing.T) {
	v := V(1, 2, 3)
	for _, a := range []Axis{AxisX, AxisY, AxisZ} {
		w := v.WithComponent(a, 9)
		if w.Component(a) != 9 {
			t.Errorf("axis %v: component = %v", a, w.Component(a))
		}
		// Other components unchanged.
		for _, o := range []Axis{AxisX, AxisY, AxisZ} {
			if o != a && w.Component(o) != v.Component(o) {
				t.Errorf("axis %v modified axis %v", a, o)
			}
		}
	}
}

func TestAxisString(t *testing.T) {
	if AxisX.String() != "X" || AxisY.String() != "Y" || AxisZ.String() != "Z" {
		t.Error("axis names wrong")
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() || V(0, math.Inf(1), 0).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestBoxNormalization(t *testing.T) {
	b := Box(V(5, -1, 3), V(-2, 4, 0))
	if b.Min != V(-2, -1, 0) || b.Max != V(5, 4, 3) {
		t.Errorf("Box = %+v", b)
	}
}

func TestAABBContainsClamp(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	if !b.Contains(V(5, 5, 5)) || !b.Contains(V(0, 0, 0)) || !b.Contains(V(10, 10, 10)) {
		t.Error("Contains boundary failure")
	}
	if b.Contains(V(-0.1, 5, 5)) || b.Contains(V(5, 10.1, 5)) {
		t.Error("Contains exterior failure")
	}
	if got := b.Clamp(V(-5, 20, 5)); got != V(0, 10, 5) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestAABBClampedPointIsContained(t *testing.T) {
	b := Box(V(-3, -3, -3), V(7, 2, 9))
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		return b.Contains(b.Clamp(V(x, y, z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAABBUnionContainsBoth(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(5, -2, 3), V(6, 0, 4))
	u := a.Union(b)
	for _, p := range []Vec3{a.Min, a.Max, b.Min, b.Max} {
		if !u.Contains(p) {
			t.Errorf("union misses %v", p)
		}
	}
}

func TestAABBSizeCenterExtent(t *testing.T) {
	b := Box(V(0, 2, 4), V(10, 6, 8))
	if b.Size() != V(10, 4, 4) {
		t.Errorf("Size = %v", b.Size())
	}
	if b.Center() != V(5, 4, 6) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Extent(AxisX) != 10 || b.Extent(AxisY) != 4 {
		t.Error("Extent wrong")
	}
}

func TestPlaneSignedDist(t *testing.T) {
	pl := NewPlane(V(0, 0, 0), V(0, 2, 0)) // normal normalized to +Y
	if !almostEq(pl.SignedDist(V(5, 3, -2)), 3) {
		t.Errorf("SignedDist = %v", pl.SignedDist(V(5, 3, -2)))
	}
	if !pl.Above(V(0, 1, 0)) || pl.Above(V(0, -1, 0)) {
		t.Error("Above wrong")
	}
}
