module pscluster

go 1.22
